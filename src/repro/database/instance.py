"""Relation and database instances with hash indexes.

This module plays the role of the in-memory RDBMS (VoltDB in the paper): it
stores tuples, maintains hash indexes from constants to tuples so that
bottom-clause construction can find "all tuples containing constant ``a``" in
O(1) per tuple, and checks FDs/INDs on demand.

:class:`RelationInstance` is the relation store of the default ``memory``
backend.  :class:`DatabaseInstance` is backend-agnostic: pass
``backend="sqlite"`` (or any name registered in
:mod:`repro.database.backend`) to materialize the instance in a different
storage/evaluation engine with the same interface.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    Callable,
    ContextManager,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .backend import Backend, RelationBackend, create_backend, warn_once
from .constraints import FunctionalDependency, InclusionDependency
from .delta import Delta
from .schema import RelationSchema, Schema

Row = Tuple[object, ...]


class RelationInstance:
    """The extension of a single relation: a set of tuples plus indexes.

    Tuples are plain Python tuples of values positionally aligned with the
    relation schema's attributes.  Two indexes are maintained:

    * ``value -> positions`` index: for each value appearing anywhere in the
      relation, the set of tuples containing it (used by bottom-clause
      construction, which looks tuples up by constant regardless of column);
    * ``(position, value) -> tuples`` index: used by joins and IND walks.
    """

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Sequence[object]] = (),
        on_change: Optional[Callable[[Row, bool], None]] = None,
    ):
        self.schema = schema
        self._rows: Set[Row] = set()
        self._by_value: Dict[object, Set[Row]] = {}
        self._by_position_value: Dict[Tuple[int, object], Set[Row]] = {}
        # Invoked as ``on_change(row, added)`` after every effective insert or
        # delete; the memory backend uses it to maintain its cross-relation
        # value index (the saturation-frontier capability).
        self._on_change = on_change
        # Installed by DatabaseInstance.mark_managed(): invoked before every
        # mutation so prepared instances can warn when callers bypass the
        # transaction/update API (stale-cache hazard).
        self.mutation_guard: Optional[Callable[[], None]] = None
        for row in rows:
            self.add(row)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, row: Sequence[object]) -> None:
        """Insert a tuple; silently ignores exact duplicates."""
        if self.mutation_guard is not None:
            self.mutation_guard()
        row_tuple: Row = tuple(row)
        if len(row_tuple) != self.schema.arity:
            raise ValueError(
                f"tuple arity {len(row_tuple)} does not match relation "
                f"{self.schema.name!r} arity {self.schema.arity}"
            )
        if row_tuple in self._rows:
            return
        self._rows.add(row_tuple)
        for position, value in enumerate(row_tuple):
            self._by_value.setdefault(value, set()).add(row_tuple)
            self._by_position_value.setdefault((position, value), set()).add(row_tuple)
        if self._on_change is not None:
            self._on_change(row_tuple, True)

    def add_all(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add(row)

    def remove(self, row: Sequence[object]) -> None:
        """Delete a tuple; raises KeyError if absent."""
        if self.mutation_guard is not None:
            self.mutation_guard()
        row_tuple: Row = tuple(row)
        if row_tuple not in self._rows:
            raise KeyError(f"tuple {row_tuple!r} not in relation {self.schema.name!r}")
        self._rows.discard(row_tuple)
        for position, value in enumerate(row_tuple):
            self._by_value.get(value, set()).discard(row_tuple)
            self._by_position_value.get((position, value), set()).discard(row_tuple)
        if self._on_change is not None:
            self._on_change(row_tuple, False)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> Set[Row]:
        """The set of tuples (do not mutate)."""
        return self._rows

    def tuples_containing(self, value: object) -> Set[Row]:
        """All tuples mentioning ``value`` in any column."""
        return self._by_value.get(value, set())

    def tuples_with(self, position: int, value: object) -> Set[Row]:
        """All tuples with ``value`` in column ``position``."""
        return self._by_position_value.get((position, value), set())

    def tuples_matching(self, bindings: Dict[int, object]) -> Set[Row]:
        """Tuples matching all ``position -> value`` bindings (index-accelerated)."""
        if not bindings:
            return set(self._rows)
        candidate_sets = [
            self.tuples_with(position, value) for position, value in bindings.items()
        ]
        candidate_sets.sort(key=len)
        result = set(candidate_sets[0])
        for candidates in candidate_sets[1:]:
            result &= candidates
            if not result:
                break
        return result

    def project(self, attributes: Sequence[str]) -> Set[Tuple[object, ...]]:
        """Projection π_attributes of this relation (as a set of tuples)."""
        positions = self.schema.positions_of(attributes)
        return {tuple(row[p] for p in positions) for row in self._rows}

    def distinct_values(self, attribute: str) -> Set[object]:
        """Distinct values of one attribute."""
        position = self.schema.position_of(attribute)
        return {row[position] for row in self._rows}

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        # Duck-typed so relation stores of different backends compare by
        # contents (e.g. memory vs sqlite parity checks).
        return (
            hasattr(other, "schema")
            and hasattr(other, "rows")
            and other.schema == self.schema
            and set(other.rows) == self._rows
        )

    def __repr__(self) -> str:
        return f"RelationInstance({self.schema.name!r}, {len(self)} tuples)"


class DatabaseInstance:
    """An instance of a schema: one relation store per relation symbol.

    The storage/evaluation engine is pluggable: ``backend`` may be a name
    (``"memory"``, ``"sqlite"``) or a pre-built backend object.  Every
    relation store of one instance is created by the same backend, so
    backends that compile multi-relation queries (SQLite) can join across
    relations in a single statement.
    """

    def __init__(self, schema: Schema, backend: Union[str, Backend, None] = None):
        self.schema = schema
        self.backend: Backend = create_backend(backend)
        self._relations: Dict[str, RelationBackend] = {
            relation.name: self.backend.make_relation(relation)
            for relation in schema.relations
        }
        # Transaction state: while a transaction() block is open, mutations
        # through the instance API are recorded and coalesced into one
        # Delta, fired once to subscribers (and logged as one mutation-log
        # record by backends with a delta-batch seam) at commit.
        self._txn_depth = 0
        self._txn_ops: List[Tuple[str, str, Tuple[Row, ...]]] = []
        self._delta_listeners: List[Callable[[Delta], None]] = []
        self._managed = False
        # Backends that replicate the instance elsewhere (the sharded
        # evaluation service) need the full schema — constraints included,
        # since saturation construction reads FDs/INDs — not just the
        # per-relation schemas make_relation sees.
        bind_schema = getattr(self.backend, "bind_instance_schema", None)
        if bind_schema is not None:
            bind_schema(schema)

    @property
    def backend_name(self) -> str:
        """The selector name of this instance's backend (``memory``, ``sqlite``)."""
        return self.backend.name

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def relation(self, name: str) -> RelationBackend:
        """The instance of relation ``name``."""
        try:
            return self._relations[name]
        except KeyError as exc:
            raise KeyError(f"relation {name!r} not in instance") from exc

    def relations(self) -> List[RelationBackend]:
        return list(self._relations.values())

    def add_tuple(self, relation: str, row: Sequence[object]) -> None:
        """Insert a tuple into a relation."""
        self.relation(relation).add(row)
        self._record(("add", relation, (tuple(row),)))

    def add_tuples(self, relation: str, rows: Iterable[Sequence[object]]) -> None:
        row_tuples = tuple(tuple(row) for row in rows)
        self.relation(relation).add_all(row_tuples)
        if row_tuples:
            self._record(("add", relation, row_tuples))

    def remove_tuple(
        self, relation: str, row: Sequence[object], missing_ok: bool = False
    ) -> None:
        """Delete a tuple from a relation.

        Raises ``KeyError`` when the tuple is absent unless ``missing_ok``
        (delta application uses idempotent retraction: removing an absent
        row is a no-op).
        """
        row_tuple = tuple(row)
        try:
            self.relation(relation).remove(row_tuple)
        except KeyError:
            if not missing_ok:
                raise
        self._record(("remove", relation, (row_tuple,)))

    # ------------------------------------------------------------------ #
    # Deltas and transactions
    # ------------------------------------------------------------------ #
    def transaction(self) -> "ContextManager[DatabaseInstance]":
        """Batch mutations into one coalesced :class:`Delta` event.

        Inside the block, :meth:`add_tuple` / :meth:`add_tuples` /
        :meth:`remove_tuple` apply immediately but their change records are
        buffered; at exit one coalesced delta is fired to subscribers and —
        on backends with a mutation log — written as a single log record
        instead of one record per call.  Transactions provide coalescing
        and single-event notification, not rollback: if the block raises,
        tuples already mutated stay mutated and the partial delta is still
        committed (so incremental caches never silently diverge).
        """
        return self._transaction_scope()

    @contextmanager
    def _transaction_scope(self) -> Iterator["DatabaseInstance"]:
        self._begin_transaction()
        try:
            yield self
        finally:
            self._end_transaction()

    def _begin_transaction(self) -> None:
        self._txn_depth += 1
        if self._txn_depth == 1:
            self._txn_ops = []
            begin = getattr(self.backend, "begin_delta_batch", None)
            if begin is not None:
                begin()

    def _end_transaction(self) -> None:
        self._txn_depth -= 1
        if self._txn_depth > 0:
            return
        delta = Delta(self._txn_ops).coalesced()
        self._txn_ops = []
        end = getattr(self.backend, "end_delta_batch", None)
        if end is not None:
            end()
        if delta:
            self._notify(delta)

    def apply_delta(self, delta: Delta) -> Delta:
        """Apply a :class:`Delta` to this instance (idempotent semantics).

        ``add`` ops ignore rows already present; ``remove`` ops ignore rows
        already absent.  Runs inside a transaction, so subscribers see one
        event and mutation-log backends record one entry.  Returns the
        applied delta.
        """
        if not isinstance(delta, Delta):
            raise TypeError(f"apply_delta expects a Delta, got {type(delta).__name__}")
        with self.transaction():
            for op, relation, rows in delta.ops:
                if op == "add":
                    self.add_tuples(relation, rows)
                else:
                    for row in rows:
                        self.remove_tuple(relation, row, missing_ok=True)
        return delta

    def subscribe_deltas(self, listener: Callable[[Delta], None]) -> Callable[[], None]:
        """Register a callback fired once per committed delta.

        Standalone ``add_tuple``/``remove_tuple`` calls fire one
        single-op delta each; a :meth:`transaction` block fires exactly one
        coalesced delta at commit.  Returns an unsubscribe function.
        """
        self._delta_listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._delta_listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def mark_managed(self) -> None:
        """Mark this instance as owned by a session/cache layer.

        Direct relation-store mutation (``instance.relation(r).add(...)`` or
        instance-level mutators outside a :meth:`transaction` block) on a
        managed instance is deprecated — it silently invalidates warm
        saturation/coverage state — and triggers a one-time warning
        pointing at the transaction/update API.
        """
        if self._managed:
            return
        self._managed = True
        for store in self._relations.values():
            if getattr(store, "mutation_guard", "missing") is None:
                store.mutation_guard = self._guard_direct_mutation

    def _guard_direct_mutation(self) -> None:
        if self._txn_depth == 0:
            warn_once(
                "Direct add/remove on a prepared instance is deprecated: it "
                "invalidates warm saturation and coverage state wholesale. "
                "Wrap mutations in instance.transaction() or route them "
                "through LearningSession.update(delta) so caches are "
                "patched incrementally.",
                stacklevel=4,
            )

    def _record(self, op: Tuple[str, str, Tuple[Row, ...]]) -> None:
        if self._txn_depth > 0:
            self._txn_ops.append(op)
        elif self._delta_listeners:
            # Only materialize a single-op Delta when someone is listening:
            # per-tuple bulk loads (worker replay, dataset generation
            # outside a transaction) would otherwise build one throwaway
            # object per row.
            self._notify(Delta([op]))

    def _notify(self, delta: Delta) -> None:
        if not delta:
            return
        for listener in list(self._delta_listeners):
            listener(delta)

    def total_tuples(self) -> int:
        """Total number of tuples across all relations (the paper's #T)."""
        return sum(len(instance) for instance in self._relations.values())

    def tuples_containing(self, value: object) -> List[Tuple[str, Row]]:
        """All (relation name, tuple) pairs where the tuple mentions ``value``.

        Backends exposing a cheap single-value neighbor hook (the memory
        backend's cross-relation value index) answer in one dict hit;
        otherwise every relation's per-relation index is consulted.
        """
        neighbors = getattr(self.backend, "neighbors_of", None)
        if neighbors is not None:
            return neighbors(value)
        found: List[Tuple[str, Row]] = []
        for name, instance in self._relations.items():
            for row in instance.tuples_containing(value):
                found.append((name, row))
        return found

    def neighbors_of_batch(
        self, values: Sequence[object]
    ) -> Dict[object, List[Tuple[str, Row]]]:
        """``value -> [(relation, tuple)]`` for a whole saturation frontier.

        This is the set-at-a-time frontier expansion bottom-clause
        construction is built on: backends with the saturation capability
        (``supports_saturation_queries``) answer the entire batch natively —
        the SQLite family runs one statement per relation over a temp
        frontier-values table, the memory backend reads its cross-relation
        index — and other backends fall back to per-value lookups.
        """
        if getattr(self.backend, "supports_saturation_queries", False):
            return self.backend.neighbors_of_batch(values)
        return {value: self.tuples_containing(value) for value in values}

    # ------------------------------------------------------------------ #
    # Constraint checking
    # ------------------------------------------------------------------ #
    def satisfies_fd(self, fd: FunctionalDependency) -> bool:
        """Check a functional dependency against the stored tuples."""
        instance = self.relation(fd.relation)
        lhs_positions = instance.schema.positions_of(fd.lhs)
        rhs_positions = instance.schema.positions_of(fd.rhs)
        seen: Dict[Tuple[object, ...], Tuple[object, ...]] = {}
        for row in instance:
            key = tuple(row[p] for p in lhs_positions)
            value = tuple(row[p] for p in rhs_positions)
            if key in seen and seen[key] != value:
                return False
            seen[key] = value
        return True

    def satisfies_ind(self, ind: InclusionDependency) -> bool:
        """Check an inclusion dependency (both directions when with_equality)."""
        left_projection = self.relation(ind.left).project(ind.left_attrs)
        right_projection = self.relation(ind.right).project(ind.right_attrs)
        if not left_projection <= right_projection:
            return False
        if ind.with_equality and not right_projection <= left_projection:
            return False
        return True

    def ind_holds_with_equality(self, ind: InclusionDependency) -> bool:
        """True when the IND holds as an equality on this instance.

        This is the preprocessing check of Section 7.4: a subset-form IND that
        happens to hold with equality on the current instance can be promoted
        and used by Castor exactly like an IND with equality.
        """
        left_projection = self.relation(ind.left).project(ind.left_attrs)
        right_projection = self.relation(ind.right).project(ind.right_attrs)
        return left_projection == right_projection

    def satisfies_all_constraints(self) -> bool:
        """Check every FD and IND declared by the schema."""
        return all(
            self.satisfies_fd(fd) for fd in self.schema.functional_dependencies
        ) and all(
            self.satisfies_ind(ind) for ind in self.schema.inclusion_dependencies
        )

    def violated_constraints(self) -> List[object]:
        """Return the list of constraints that do not hold on this instance."""
        violations: List[object] = []
        for fd in self.schema.functional_dependencies:
            if not self.satisfies_fd(fd):
                violations.append(fd)
        for ind in self.schema.inclusion_dependencies:
            if not self.satisfies_ind(ind):
                violations.append(ind)
        return violations

    # ------------------------------------------------------------------ #
    # Comparison / copying
    # ------------------------------------------------------------------ #
    def data_token(self) -> Optional[Tuple[int, int]]:
        """Cheap token of this instance's current contents-version.

        Changes whenever a tuple is inserted or deleted (and when the
        relation set changes), so caches keyed on an instance — e.g. a
        :class:`~repro.session.session.LearningSession`'s prepared-instance
        and saturation-store caches — can notice mutations without
        scanning.  ``None`` when the backend tracks no version (exotic
        third-party backends); every registered backend tracks one.
        """
        pool_state = getattr(self.backend, "_pool_state", None)
        if pool_state is not None:
            return pool_state()
        # Plain SQLite (no snapshot pool) and the memory backend expose the
        # bare version counter instead.
        for attribute in ("_data_version", "data_version"):
            version = getattr(self.backend, attribute, None)
            if version is not None:
                return (len(self._relations), version)
        return None

    def copy(self) -> "DatabaseInstance":
        """Deep-ish copy: new relation stores (same backend kind) sharing tuples."""
        return self.with_backend(self.backend_name)

    def with_backend(self, backend: Union[str, Backend, None]) -> "DatabaseInstance":
        """Materialize the same contents in a (possibly different) backend."""
        duplicate = DatabaseInstance(self.schema, backend=backend)
        for name, instance in self._relations.items():
            duplicate.add_tuples(name, instance.rows)
        return duplicate

    def same_contents(self, other: "DatabaseInstance") -> bool:
        """True when both instances store identical tuple sets per relation name."""
        if set(self._relations) != set(other._relations):
            return False
        return all(
            self._relations[name].rows == other._relations[name].rows
            for name in self._relations
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseInstance):
            return NotImplemented
        return self.same_contents(other)

    def __repr__(self) -> str:
        return (
            f"DatabaseInstance({self.schema.name!r}, {len(self._relations)} relations, "
            f"{self.total_tuples()} tuples)"
        )
