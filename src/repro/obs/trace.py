"""Hierarchical span tracing with cross-process context propagation.

A *span* is a named, timed region.  Spans nest through a ``contextvars``
context variable, so ``with span("learn.cover"):`` inside
``with span("session.run"):`` records the parent edge without any explicit
plumbing.  Each span carries:

* ``trace_id`` — shared by every span of one logical run, across processes;
* ``span_id`` / ``parent_id`` — the tree edges;
* ``process`` / ``pid`` / ``tid`` — where it actually ran.

Cross-process propagation is two small hooks:

* the **sender** attaches :meth:`Tracer.inject` (trace id + current span id)
  to the outgoing envelope;
* the **receiver** wraps request handling in :meth:`Tracer.activate` with
  that context, records its spans, then ships them back to the sender via
  :meth:`Tracer.drain`, and the sender folds them in with
  :meth:`Tracer.extend`.

The receiving side records spans *whenever a remote context is active*, even
if local tracing was never enabled — the server does not need a flag flip to
participate in a client's trace.  With no remote context and tracing
disabled, :func:`span` returns a shared no-op context manager: the disabled
path is one attribute check and no allocation.
"""

from __future__ import annotations

import contextvars
import json
import os
import platform
import sys
import threading
import time
import uuid
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: (trace_id, span_id) of the innermost active span, or None.
_CURRENT: contextvars.ContextVar[Optional[Tuple[str, str]]] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def _new_id(bits: int = 64) -> str:
    return uuid.uuid4().hex[: bits // 4]


class SpanRecord:
    """One finished span.  Plain data; ``to_dict`` is the wire/dump form."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start", "duration", "process", "pid", "tid", "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        duration: float,
        process: str,
        pid: int,
        tid: int,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration = duration
        self.process = process
        self.pid = pid
        self.tid = tid
        self.attrs = attrs

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "process": self.process,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=str(data["name"]),
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
            start=float(data["start"]),
            duration=float(data["duration"]),
            process=str(data.get("process", "?")),
            pid=int(data.get("pid", 0)),
            tid=int(data.get("tid", 0)),
            attrs=dict(data.get("attrs") or {}),
        )


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> None:
        return None

    def set(self, **_attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = (
        "_tracer", "name", "trace_id", "span_id", "parent_id",
        "attrs", "_start_wall", "_start_perf", "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self._start_wall = 0.0
        self._start_perf = 0.0
        self._token: Optional[contextvars.Token] = None

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (result sizes, hit counts)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        return self

    def __exit__(self, exc_type: "type | None", _exc: object, _tb: object) -> None:
        duration = time.perf_counter() - self._start_perf
        if self._token is not None:
            _CURRENT.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._record(
            SpanRecord(
                name=self.name,
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start=self._start_wall,
                duration=duration,
                process=self._tracer.process,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=self.attrs,
            )
        )


class _Activation:
    """Context manager installing a remote (trace_id, span_id) as parent."""

    __slots__ = ("_context", "_token")

    def __init__(self, context: Optional[Tuple[str, str]]) -> None:
        self._context = context
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "_Activation":
        if self._context is not None:
            self._token = _CURRENT.set(self._context)
        return self

    def __exit__(self, *_exc: object) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)


class Tracer:
    """Per-process span buffer + context plumbing.  See module docstring."""

    def __init__(self, process: str = "main") -> None:
        self.process = process
        self._enabled = False
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []

    # ------------------------------------------------------------- state
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, process: Optional[str] = None) -> None:
        if process is not None:
            self.process = process
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    # ------------------------------------------------------------- spans
    def span(self, name: str, **attrs: Any) -> "_Span | _NullSpan":
        """A timed span under the current parent (no-op when inactive)."""
        current = _CURRENT.get()
        if not self._enabled and current is None:
            return _NULL_SPAN
        if current is not None:
            trace_id, parent_id = current
        else:
            trace_id, parent_id = _new_id(128), None
        return _Span(self, name, trace_id, parent_id, attrs)

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # --------------------------------------------------------- transport
    def current_trace_id(self) -> Optional[str]:
        current = _CURRENT.get()
        return current[0] if current is not None else None

    def inject(self) -> Optional[Dict[str, str]]:
        """Wire form of the current context, or None when inactive."""
        current = _CURRENT.get()
        if current is None:
            return None
        return {"trace_id": current[0], "parent_id": current[1]}

    def activate(self, context: Optional[Dict[str, Any]]) -> _Activation:
        """Adopt a remote context for the duration of request handling."""
        if not context:
            return _Activation(None)
        trace_id = context.get("trace_id")
        parent_id = context.get("parent_id")
        if not isinstance(trace_id, str) or not isinstance(parent_id, str):
            return _Activation(None)
        return _Activation((trace_id, parent_id))

    def drain(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Pop finished spans (of one trace) for shipping to the caller.

        Draining per trace id keeps a multi-tenant server from leaking one
        client's spans into another client's replies.
        """
        with self._lock:
            if trace_id is None:
                drained, self._records = self._records, []
            else:
                drained = [r for r in self._records if r.trace_id == trace_id]
                self._records = [
                    r for r in self._records if r.trace_id != trace_id
                ]
        return [record.to_dict() for record in drained]

    def extend(self, records: Iterable[Dict[str, Any]]) -> None:
        """Fold spans shipped from another process into this buffer."""
        parsed = [SpanRecord.from_dict(r) for r in records]
        with self._lock:
            self._records.extend(parsed)

    # ------------------------------------------------------------- dumps
    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def to_json(self) -> Dict[str, Any]:
        records = self.records()
        return {
            "format": "repro-trace",
            "version": 1,
            "spans": [record.to_dict() for record in records],
        }

    def dump_json(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` form (load via chrome://tracing, Perfetto)."""
        events: List[Dict[str, Any]] = []
        seen_processes: Dict[int, str] = {}
        for record in self.records():
            if record.pid not in seen_processes:
                seen_processes[record.pid] = record.process
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": record.pid,
                        "tid": 0,
                        "args": {"name": record.process},
                    }
                )
            events.append(
                {
                    "name": record.name,
                    "cat": record.trace_id,
                    "ph": "X",
                    "ts": record.start * 1e6,
                    "dur": record.duration * 1e6,
                    "pid": record.pid,
                    "tid": record.tid,
                    "args": record.attrs,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def dump_chrome(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, sort_keys=True)
            handle.write("\n")
        return path


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-global tracer every layer shares."""
    return _TRACER


def span(name: str, **attrs: Any) -> "_Span | _NullSpan":
    """``with span("learn.saturate", examples=n):`` on the global tracer."""
    return _TRACER.span(name, **attrs)


def provenance(**extra: Any) -> Dict[str, Any]:
    """The shared provenance block embedded in every ``BENCH_*`` artifact.

    Callers add run-specific configuration (backend, shards, parallelism)
    as keyword arguments; the base block records where the numbers came
    from so two artifacts are comparable at a glance.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "executable": sys.executable,
        "pid": os.getpid(),
        **extra,
    }
