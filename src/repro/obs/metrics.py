"""Process-global metrics registry: counters, gauges, histograms.

Design constraints, in order:

* **zero dependencies** — standard library only;
* **thread-safe** — the server increments from one thread per client, the
  pooled backend from a worker pool;
* **cheap when idle** — a metric is a lock plus a number; nothing polls,
  nothing exports until asked;
* **one seam** — :func:`registry` returns the process singleton every layer
  shares, so a snapshot in one place sees the whole process.

Series are identified by ``(name, labels)``: asking for the same pair twice
returns the same object, which is what lets short-lived owners (a coverage
engine per fold, a served handle per client) accumulate into stable series.
Names are dotted (``server.batches_coalesced``); the Prometheus exposition
rewrites dots to underscores since Prometheus metric names cannot contain
them.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

LabelsKey = Tuple[Tuple[str, str], ...]

#: Ring-buffer capacity for histogram samples.  Percentiles are computed
#: over the most recent observations; count/sum/min/max stay exact forever.
_HISTOGRAM_SAMPLES = 4096


def _labels_key(labels: Dict[str, object]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing number."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge to go down")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A number that can go both ways (in-flight requests, cache bytes)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _HistogramTimer:
    """``with histogram.time():`` observes elapsed monotonic seconds."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class Histogram:
    """Exact count/sum/min/max plus percentiles over a sample ring buffer."""

    __slots__ = ("_lock", "_count", "_sum", "_min", "_max", "_samples", "_cursor")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: List[float] = []
        self._cursor = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._samples) < _HISTOGRAM_SAMPLES:
                self._samples.append(value)
            else:
                self._samples[self._cursor] = value
                self._cursor = (self._cursor + 1) % _HISTOGRAM_SAMPLES

    def time(self) -> _HistogramTimer:
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the retained samples.

        ``p`` is in [0, 100]; 0 is the sample minimum, 100 the maximum.
        Returns ``None`` when nothing has been observed.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        if p == 0:
            return ordered[0]
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
        return ordered[min(int(rank), len(ordered)) - 1]

    def summary(self) -> Dict[str, Optional[float]]:
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
            ordered = sorted(self._samples)
        summary: Dict[str, Optional[float]] = {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
        }
        for label, p in (("p50", 50), ("p90", 90), ("p99", 99)):
            if not ordered:
                summary[label] = None
            else:
                rank = max(1, -(-len(ordered) * p // 100))
                summary[label] = ordered[min(int(rank), len(ordered)) - 1]
        return summary


class Registry:
    """Get-or-create home for every metric series in the process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelsKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelsKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelsKey], Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram()
        return metric

    def total(self, name: str) -> int:
        """Sum of one counter name across all of its label sets."""
        with self._lock:
            metrics = [c for (n, _), c in self._counters.items() if n == name]
        return sum(metric.value for metric in metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A point-in-time, JSON-friendly copy, isolated from later updates.

        Series keys render labels Prometheus-style:
        ``server.batches{handle="ab12"}``.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                _series_name(name, labels): metric.value
                for (name, labels), metric in sorted(counters.items())
            },
            "gauges": {
                _series_name(name, labels): metric.value
                for (name, labels), metric in sorted(gauges.items())
            },
            "histograms": {
                _series_name(name, labels): metric.summary()
                for (name, labels), metric in sorted(histograms.items())
            },
        }

    def prometheus_text(self) -> str:
        """Prometheus text exposition (dots become underscores in names)."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        lines: List[str] = []
        seen_types: set = set()

        def emit(name: str, labels: LabelsKey, value: object, kind: str,
                 suffix: str = "", extra: Iterable[Tuple[str, str]] = ()) -> None:
            prom = name.replace(".", "_").replace("-", "_")
            if (prom, kind) not in seen_types and not suffix:
                seen_types.add((prom, kind))
                lines.append(f"# TYPE {prom} {kind}")
            rendered = ",".join(
                f'{k}="{v}"' for k, v in (*labels, *extra)
            )
            label_part = f"{{{rendered}}}" if rendered else ""
            lines.append(f"{prom}{suffix}{label_part} {value}")

        for (name, labels), counter in counters:
            emit(name, labels, counter.value, "counter")
        for (name, labels), gauge in gauges:
            emit(name, labels, gauge.value, "gauge")
        for (name, labels), histogram in histograms:
            summary = histogram.summary()
            prom = name.replace(".", "_").replace("-", "_")
            if (prom, "summary") not in seen_types:
                seen_types.add((prom, "summary"))
                lines.append(f"# TYPE {prom} summary")
            emit(name, labels, summary["count"], "summary", suffix="_count")
            emit(name, labels, summary["sum"], "summary", suffix="_sum")
            for label, quantile in (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99")):
                value = summary[label]
                if value is not None:
                    emit(name, labels, value, "summary",
                         extra=(("quantile", quantile),))
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every series.  Test isolation only — never during a run."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def _series_name(name: str, labels: LabelsKey) -> str:
    if not labels:
        return name
    rendered = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{rendered}}}"


_REGISTRY = Registry()


def registry() -> Registry:
    """The process-global registry every layer shares."""
    return _REGISTRY
