"""Observability: a zero-dependency metrics registry + hierarchical tracing.

Two seams, both process-global:

* :func:`registry` — the metrics registry.  Every counter the stack used to
  keep as an ad-hoc instance attribute (``reloads_full``,
  ``batches_coalesced``, per-handle hit rates, ...) lives here as a named,
  optionally-labelled series; snapshots and Prometheus-style text exposition
  come for free.
* :func:`tracer` — the span tracer.  ``with span("saturation.build",
  examples=n):`` records a timed span under the current parent;
  :meth:`~repro.obs.trace.Tracer.inject` /
  :meth:`~repro.obs.trace.Tracer.activate` carry the trace context across
  the wire so one learner run yields a single tree spanning
  client -> server -> shard workers.

Both are **off by default** and cheap when idle: a disabled tracer hands out
a shared no-op context manager, and registry metrics are plain
lock-guarded numbers with no background machinery.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, Registry, registry
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    provenance,
    span,
    tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "registry",
    "SpanRecord",
    "Tracer",
    "provenance",
    "span",
    "tracer",
]
