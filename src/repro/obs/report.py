"""Render a per-phase time breakdown from a trace dump.

Usage::

    python -m repro.obs.report TRACE.json [--tree] [--process NAME]

The default view aggregates spans by name: call count, total/mean wall
time, and share of traced time (the sum of root spans).  ``--tree`` prints
the span forest instead, one line per span, children indented under their
parents — including spans that ran in other processes, which is the whole
point of cross-wire propagation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.trace import SpanRecord


def load_spans(path: str) -> List[SpanRecord]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict) and data.get("format") == "repro-trace":
        raw = data.get("spans", [])
    elif isinstance(data, list):
        raw = data
    else:
        raise ValueError(
            f"{path}: not a repro-trace dump (expected format='repro-trace')"
        )
    return [SpanRecord.from_dict(entry) for entry in raw]


def phase_table(spans: Sequence[SpanRecord]) -> List[Dict[str, Any]]:
    """Aggregate spans by name, heaviest first."""
    by_name: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        row = by_name.setdefault(
            record.name,
            {"name": record.name, "count": 0, "total": 0.0,
             "processes": set()},
        )
        row["count"] += 1
        row["total"] += record.duration
        row["processes"].add(record.process)
    roots_total = sum(r.duration for r in spans if r.parent_id is None)
    rows = sorted(by_name.values(), key=lambda row: -row["total"])
    for row in rows:
        row["mean"] = row["total"] / row["count"]
        row["share"] = (row["total"] / roots_total) if roots_total else None
        row["processes"] = ",".join(sorted(row["processes"]))
    return rows


def render_table(rows: Sequence[Dict[str, Any]]) -> str:
    lines = [
        f"{'span':<36} {'count':>6} {'total ms':>10} {'mean ms':>9} "
        f"{'share':>6}  processes"
    ]
    for row in rows:
        share = f"{row['share'] * 100:5.1f}%" if row["share"] is not None else "     -"
        lines.append(
            f"{row['name']:<36} {row['count']:>6} "
            f"{row['total'] * 1000:>10.1f} {row['mean'] * 1000:>9.2f} "
            f"{share}  {row['processes']}"
        )
    return "\n".join(lines)


def render_tree(spans: Sequence[SpanRecord]) -> str:
    by_parent: Dict[Optional[str], List[SpanRecord]] = {}
    known = {record.span_id for record in spans}
    for record in spans:
        # A parent recorded in a process whose spans we don't have (or a
        # dropped record) must not hide the subtree: treat it as a root.
        parent = record.parent_id if record.parent_id in known else None
        by_parent.setdefault(parent, []).append(record)
    for children in by_parent.values():
        children.sort(key=lambda record: record.start)

    lines: List[str] = []

    def walk(parent: Optional[str], depth: int) -> None:
        for record in by_parent.get(parent, []):
            indent = "  " * depth
            attrs = ""
            if record.attrs:
                rendered = ", ".join(
                    f"{k}={v}" for k, v in sorted(record.attrs.items())
                )
                attrs = f"  [{rendered}]"
            lines.append(
                f"{indent}{record.name:<{max(1, 40 - len(indent))}} "
                f"{record.duration * 1000:>9.1f} ms  "
                f"({record.process}){attrs}"
            )
            walk(record.span_id, depth + 1)

    walk(None, 0)
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dump", help="trace dump written by trace_dump()/--trace")
    parser.add_argument(
        "--tree", action="store_true", help="print the span forest instead"
    )
    parser.add_argument(
        "--process", default=None,
        help="only spans recorded in this process label",
    )
    args = parser.parse_args(argv)

    spans = load_spans(args.dump)
    if args.process:
        spans = [record for record in spans if record.process == args.process]
    if not spans:
        print("no spans in dump", file=sys.stderr)
        return 1

    trace_ids = {record.trace_id for record in spans}
    processes = {record.process for record in spans}
    print(
        f"{len(spans)} spans, {len(trace_ids)} trace(s), "
        f"processes: {', '.join(sorted(processes))}\n"
    )
    if args.tree:
        print(render_tree(spans))
    else:
        print(render_table(phase_table(spans)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
