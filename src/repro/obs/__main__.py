"""``python -m repro.obs`` forwards to the report CLI."""

import sys

from repro.obs.report import main

if __name__ == "__main__":
    sys.exit(main())
