"""FOIL's information-gain scoring.

The classic FOIL gain of refining clause ``C`` into ``C'`` is::

    gain(C, C') = p1 * (log2(p1 / (p1 + n1)) - log2(p0 / (p0 + n0)))

where ``p0/n0`` are the positive/negative examples covered by ``C`` and
``p1/n1`` those covered by ``C'``.  The implementation scores coverage at the
example level (rather than the binding level of the original system), which
preserves the greedy ranking behaviour the paper's analysis relies on while
keeping evaluation costs proportional to the number of examples.
"""

from __future__ import annotations

import math
from typing import Tuple


def information_content(positives: int, negatives: int) -> float:
    """``-log2`` of the fraction of covered examples that are positive."""
    total = positives + negatives
    if positives == 0 or total == 0:
        return float("inf")
    return -math.log2(positives / total)


def foil_gain(
    positives_before: int,
    negatives_before: int,
    positives_after: int,
    negatives_after: int,
) -> float:
    """FOIL gain of a refinement, at example granularity.

    Returns ``-inf`` when the refined clause covers no positives (useless
    refinement), and treats a clause that covers positives but no negatives
    as maximally informative for its coverage.
    """
    if positives_after == 0:
        return float("-inf")
    info_before = information_content(positives_before, negatives_before)
    info_after = information_content(positives_after, negatives_after)
    if math.isinf(info_before):
        # The parent covered nothing positive; any positive coverage is a gain.
        info_before = 0.0
    return positives_after * (info_before - info_after)


def coverage_score(positives: int, negatives: int, length: int = 0) -> float:
    """Aleph's default "coverage/compression" score: P - N - length."""
    return positives - negatives - length


def precision(positives: int, negatives: int) -> float:
    """Training precision of a clause; 0 when nothing is covered."""
    total = positives + negatives
    return positives / total if total else 0.0


def laplace_accuracy(positives: int, negatives: int) -> float:
    """Laplace-corrected accuracy, a smoother tie-breaking score."""
    return (positives + 1) / (positives + negatives + 2)


def score_components(
    positives_before: int,
    negatives_before: int,
    positives_after: int,
    negatives_after: int,
) -> Tuple[float, float, float]:
    """Bundle (gain, precision, laplace) for a refinement — used by beam search."""
    return (
        foil_gain(positives_before, negatives_before, positives_after, negatives_after),
        precision(positives_after, negatives_after),
        laplace_accuracy(positives_after, negatives_after),
    )
