"""Candidate-literal generation for top-down learners (the refinement operator).

FOIL's specialization operator adds one new literal to the clause body.  A
candidate literal for relation ``R(A1..Ak)`` assigns each argument position
either an existing clause variable or a fresh variable, with at least one
existing variable so the clause stays linked; optionally, small-domain
columns may also be specialized to constants (this is how FOIL learns
literals like ``yearsInProgram(x, 7)`` in Example 1.1).

The number of such literals grows combinatorially with relation arity and
with the number of clause variables — which is precisely why top-down
learners degrade on composed (wide) schemas.  ``max_candidates_per_relation``
caps the blow-up so runs terminate, mirroring the resource limits real
systems impose.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..database.instance import DatabaseInstance
from ..database.schema import Schema
from ..logic.atoms import Atom
from ..logic.clauses import HornClause
from ..logic.terms import Constant, Term, Variable


class RefinementConfig:
    """Limits on candidate-literal generation."""

    def __init__(
        self,
        max_new_variables_per_literal: int = 2,
        max_candidates_per_relation: int = 300,
        constant_domain_threshold: int = 12,
        max_constants_per_column: int = 8,
        allow_constants: bool = True,
    ):
        self.max_new_variables_per_literal = max_new_variables_per_literal
        self.max_candidates_per_relation = max_candidates_per_relation
        self.constant_domain_threshold = constant_domain_threshold
        self.max_constants_per_column = max_constants_per_column
        self.allow_constants = allow_constants


class RefinementOperator:
    """Generate candidate literals to append to a clause under construction."""

    def __init__(
        self,
        schema: Schema,
        instance: Optional[DatabaseInstance] = None,
        config: Optional[RefinementConfig] = None,
    ):
        self.schema = schema
        self.instance = instance
        self.config = config or RefinementConfig()
        self._constant_pool: Dict[Tuple[str, int], List[object]] = {}
        if instance is not None and self.config.allow_constants:
            self._build_constant_pool(instance)

    def _build_constant_pool(self, instance: DatabaseInstance) -> None:
        """Collect constants for small-domain, non-key columns.

        A column qualifies when it has few distinct values in absolute terms
        *and* relative to the relation size — columns that look like keys or
        identifiers (one distinct value per row or close to it) would only
        produce overfitted single-example literals.
        """
        for relation in self.schema.relations:
            try:
                stored = instance.relation(relation.name)
            except KeyError:
                continue
            row_count = len(stored)
            for position, attribute in enumerate(relation.attributes):
                values = stored.distinct_values(attribute)
                if not values or len(values) > self.config.constant_domain_threshold:
                    continue
                if row_count and len(values) > row_count / 2:
                    continue
                ordered = sorted(values, key=str)[: self.config.max_constants_per_column]
                self._constant_pool[(relation.name, position)] = ordered

    # ------------------------------------------------------------------ #
    # Candidate generation
    # ------------------------------------------------------------------ #
    def candidate_literals(self, clause: HornClause) -> List[Atom]:
        """All candidate literals for one refinement step of ``clause``."""
        existing = clause.variables()
        candidates: List[Atom] = []
        for relation in self.schema.relations:
            candidates.extend(self._candidates_for_relation(relation.name, relation.arity, existing))
        return candidates

    def _candidates_for_relation(
        self, relation: str, arity: int, existing: Sequence[Variable]
    ) -> List[Atom]:
        config = self.config
        candidates: List[Atom] = []
        seen: Set[Atom] = set()
        fresh_names = [Variable(f"n{i}") for i in range(arity)]

        # Each position gets: an existing variable, a fresh variable, or (for
        # small-domain columns) a constant.  Enumerate with a cap.
        position_choices: List[List[Term]] = []
        for position in range(arity):
            choices: List[Term] = list(existing)
            choices.append(fresh_names[position])
            for value in self._constant_pool.get((relation, position), []):
                choices.append(Constant(value))
            position_choices.append(choices)

        for assignment in itertools.product(*position_choices):
            if len(candidates) >= config.max_candidates_per_relation:
                break
            if not any(isinstance(term, Variable) and term in existing for term in assignment):
                continue
            new_vars = {
                term
                for term in assignment
                if isinstance(term, Variable) and term not in existing
            }
            if len(new_vars) > config.max_new_variables_per_literal:
                continue
            atom = Atom(relation, assignment)
            if atom not in seen:
                seen.add(atom)
                candidates.append(atom)
        return candidates

    def candidate_literals_for_clause(self, clause: HornClause) -> List[Atom]:
        """Candidate literals not already present in the clause body."""
        present = set(clause.body)
        return [atom for atom in self.candidate_literals(clause) if atom not in present]

    def refine(self, clause: HornClause) -> Iterator[HornClause]:
        """Yield all one-literal refinements of ``clause``."""
        for literal in self.candidate_literals(clause):
            yield clause.add_literal(literal)


def initial_clause(target: str, arity: int) -> HornClause:
    """The most general clause for a target: ``target(x0, ..., xk) :- true``."""
    head = Atom(target, [Variable(f"x{i}") for i in range(arity)])
    return HornClause(head, [])
