"""FOIL: the classic greedy top-down relational learner (Quinlan 1990).

FOIL follows the covering approach (Algorithm 1).  Its ``LearnClause``
procedure starts from the most general clause ``T(x...) :- true`` and greedily
adds the candidate literal with the highest FOIL gain until the clause covers
no negative examples (or no literal improves it, or the clause-length bound
is reached).  FOIL does not backtrack, which is the root of its schema
dependence (Example 1.1 / Theorem 5.1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..database.instance import DatabaseInstance
from ..database.schema import Schema
from ..learning.coverage import BatchCoverageEngine, QueryCoverageEngine
from ..learning.knobs import EvaluationKnobs
from ..learning.covering import CoveringLearner, CoveringParameters
from ..learning.examples import Example, ExampleSet
from ..logic.clauses import HornClause, HornDefinition
from ..obs import span as obs_span
from .gain import foil_gain, precision
from .refinement import RefinementConfig, RefinementOperator, initial_clause


class FoilParameters:
    """FOIL's knobs, named after the original system where applicable.

    ``max_clause_length`` is the clause-length bound analyzed in Theorem 5.1;
    ``min_precision`` is the ``aaccur`` setting (0.67 in the experiments).
    ``lookahead_candidates`` bounds the two-literal lookahead used when no
    single literal has positive gain (the role of FOIL's determinate
    literals): the top candidates by coverage are each extended by one more
    literal and the best gaining *pair* is added.

    ``parallelism`` bounds how many candidate refinements one scoring batch
    may evaluate concurrently (identical results for every value);
    ``max_seconds`` is the covering loop's soft deadline — when it elapses,
    the clauses accepted so far are returned.
    """

    def __init__(
        self,
        max_clause_length: int = 6,
        min_precision: float = 0.67,
        min_positives: int = 2,
        max_clauses: int = 25,
        lookahead_candidates: int = 10,
        lookahead_extensions: int = 60,
        refinement: Optional[RefinementConfig] = None,
        max_seconds: Optional[float] = None,
        parallelism: int = 1,
    ):
        self.max_clause_length = int(max_clause_length)
        self.min_precision = float(min_precision)
        self.min_positives = int(min_positives)
        self.max_clauses = int(max_clauses)
        self.lookahead_candidates = int(lookahead_candidates)
        self.lookahead_extensions = int(lookahead_extensions)
        self.refinement = refinement or RefinementConfig()
        self.max_seconds = max_seconds
        self.parallelism = max(1, int(parallelism))


class _FoilClauseLearner:
    """LearnClause strategy: greedy gain-driven literal addition."""

    learner_label = "FOIL"

    def __init__(self, schema: Schema, parameters: FoilParameters, coverage: QueryCoverageEngine):
        self.schema = schema
        self.parameters = parameters
        self.coverage = coverage
        self.batch = BatchCoverageEngine(
            coverage, parallelism=getattr(parameters, "parallelism", 1)
        )

    def learn_clause(
        self,
        instance: DatabaseInstance,
        uncovered_positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> Optional[HornClause]:
        if not uncovered_positives:
            return None
        target = uncovered_positives[0].target
        arity = len(uncovered_positives[0].values)
        clause = initial_clause(target, arity)
        operator = RefinementOperator(self.schema, instance, self.parameters.refinement)

        covered_pos = list(uncovered_positives)
        covered_neg = list(negatives)

        while covered_neg and clause.length < self.parameters.max_clause_length:
            scored = self._score_single_literals(
                operator, clause, covered_pos, covered_neg
            )
            if not scored:
                break
            best_gain, best_literals, best_cover = scored[0]
            if best_gain <= 0 and clause.length + 1 < self.parameters.max_clause_length:
                lookahead = self._lookahead(operator, clause, scored, covered_pos, covered_neg)
                if lookahead is not None:
                    best_gain, best_literals, best_cover = lookahead
            if best_gain <= 0 and clause.length > 0:
                # No single literal or pair improves the clause further.
                break
            for literal in best_literals:
                clause = clause.add_literal(literal)
            covered_pos, covered_neg = best_cover

        if clause.length == 0:
            return None
        if len(covered_pos) < self.parameters.min_positives:
            return None
        if precision(len(covered_pos), len(covered_neg)) < self.parameters.min_precision:
            return None
        if not clause.is_safe():
            return None
        return clause

    # ------------------------------------------------------------------ #
    def _batch_gains(self, candidates, covered_pos, covered_neg):
        """Batched FOIL gain for a list of candidate clauses.

        Positive coverage of the whole batch is computed in one call; only
        candidates passing ``min_positives`` pay for negative coverage (a
        second, smaller batch).  Returns ``(gain, new_pos, new_neg) | None``
        per candidate, in input order.
        """
        with obs_span(
            "learn.score", learner=self.learner_label, candidates=len(candidates)
        ):
            pos_lists = self.batch.covered_examples_batch(candidates, covered_pos)
            survivors = [
                index
                for index, new_pos in enumerate(pos_lists)
                if len(new_pos) >= self.parameters.min_positives
            ]
            neg_lists = self.batch.covered_examples_batch(
                [candidates[index] for index in survivors], covered_neg
            )
        results: List[Optional[tuple]] = [None] * len(candidates)
        for index, new_neg in zip(survivors, neg_lists):
            new_pos = pos_lists[index]
            gain = foil_gain(
                len(covered_pos), len(covered_neg), len(new_pos), len(new_neg)
            )
            results[index] = (gain, new_pos, new_neg)
        return results

    def _score_single_literals(self, operator, clause, covered_pos, covered_neg):
        """Score every one-literal refinement; best first.

        Each entry is ``(gain, [literal], (new_pos, new_neg))``.  Candidates
        covering fewer than ``min_positives`` positives are discarded.  All
        refinements of the clause are scored as one coverage batch.
        """
        literals = operator.candidate_literals_for_clause(clause)
        candidates = [clause.add_literal(literal) for literal in literals]
        scored = []
        for literal, entry in zip(literals, self._batch_gains(candidates, covered_pos, covered_neg)):
            if entry is None:
                continue
            gain, new_pos, new_neg = entry
            scored.append((gain, [literal], (new_pos, new_neg)))
        scored.sort(key=lambda entry: (entry[0], len(entry[2][0]), -len(entry[2][1])), reverse=True)
        return scored

    def _lookahead(self, operator, clause, scored, covered_pos, covered_neg):
        """Two-literal lookahead used when no single literal has positive gain.

        The top zero-gain candidates (typically literals that only introduce a
        join variable) are each extended by one further literal; each
        intermediate's extensions are scored as one batch and the best
        gaining pair, if any, is returned.
        """
        best = None
        for _, literals, _ in scored[: self.parameters.lookahead_candidates]:
            intermediate = clause.add_literal(literals[0])
            extensions = operator.candidate_literals_for_clause(intermediate)
            extensions = extensions[: self.parameters.lookahead_extensions]
            candidates = [intermediate.add_literal(ext) for ext in extensions]
            for extension, entry in zip(
                extensions, self._batch_gains(candidates, covered_pos, covered_neg)
            ):
                if entry is None:
                    continue
                gain, new_pos, new_neg = entry
                if gain > 0 and (best is None or gain > best[0]):
                    best = (gain, [literals[0], extension], (new_pos, new_neg))
        return best


class FoilLearner(EvaluationKnobs):
    """Public FOIL learner: ``learn(instance, examples) -> HornDefinition``."""

    name = "FOIL"

    def __init__(
        self,
        schema: Schema,
        parameters: Optional[FoilParameters] = None,
        backend: Optional[str] = None,
        parallelism: Optional[int] = None,
        shards: Optional[int] = None,
        context=None,
    ):
        self.schema = schema
        self.parameters = parameters or FoilParameters()
        # Deliberately only the backend/shards half of the mixin's knob
        # set: query coverage has no saturations and no compiled
        # subsumption, and phantom attributes would make apply() silently
        # accept settings this learner cannot honor.
        self.backend = backend
        self.shards = shards
        if parallelism is not None:
            self.parameters.parallelism = max(1, int(parallelism))
        self._apply_context(context)

    @property
    def parallelism(self) -> int:
        """Clause-level scoring fan-out (the experiment harness sets this)."""
        return self.parameters.parallelism

    @parallelism.setter
    def parallelism(self, value: int) -> None:
        self.parameters.parallelism = max(1, int(value))

    def learn(self, instance: DatabaseInstance, examples: ExampleSet) -> HornDefinition:
        """Learn a Horn definition of the examples' target relation."""
        instance = self._prepare_instance(instance)
        coverage = QueryCoverageEngine(instance)
        clause_learner = _FoilClauseLearner(self.schema, self.parameters, coverage)
        covering = CoveringLearner(
            clause_learner,
            coverage_fn=coverage.covered_examples,
            coverage_mask_fn=coverage.covered_mask,
            precision_fn=lambda clause, pos, neg: precision(
                len(coverage.covered_examples(clause, pos)),
                len(coverage.covered_examples(clause, neg)),
            ),
            parameters=CoveringParameters(
                min_precision=self.parameters.min_precision,
                min_positives=self.parameters.min_positives,
                max_clauses=self.parameters.max_clauses,
                max_seconds=self.parameters.max_seconds,
                parallelism=self.parameters.parallelism,
            ),
        )
        return covering.learn(instance, examples)
