"""FOIL: greedy top-down relational learning (baseline, schema dependent)."""

from .foil import FoilLearner, FoilParameters
from .gain import coverage_score, foil_gain, information_content, laplace_accuracy, precision
from .refinement import RefinementConfig, RefinementOperator, initial_clause

__all__ = [
    "FoilLearner",
    "FoilParameters",
    "RefinementConfig",
    "RefinementOperator",
    "coverage_score",
    "foil_gain",
    "information_content",
    "initial_clause",
    "laplace_accuracy",
    "precision",
]
