"""`SessionConfig`: one validated object replacing the knob soup.

Before this module existed every entry point re-threaded ``backend=``,
``parallelism=``, ``shards=``, ``saturation_store=``, ``presaturate=``
independently — the same five keywords on every learner constructor, every
harness function, and every benchmark, each with its own silent-typo
surface.  :class:`SessionConfig` is the single place those settings live:

* construction **validates coherence** (e.g. ``shards=4`` on the ``memory``
  backend is a configuration error with an actionable message, not a
  warning buried in a log);
* :meth:`SessionConfig.apply` is the single normalization path that pushes
  the settings onto a learner and/or an instance — the warn-once
  best-effort semantics of the old harness helpers live here now;
* the config is immutable; :meth:`merged` derives variations.

Learners accept a config directly via their uniform ``context=`` keyword::

    config = SessionConfig(backend="sqlite-pooled", parallelism=4)
    learner = CastorLearner(schema, context=config)

or, preferably, through a :class:`~repro.session.session.LearningSession`
that also owns the engine/store lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from ..database.backend import (
    backend_names,
    configure_backend_sharding,
    warn_once,
)

#: Coverage strategies a config may pin.  ``auto`` keeps every learner's own
#: default (subsumption for the bottom-up family, query coverage for FOIL);
#: the ``subsumption-*`` values force the compiled (SQL saturation-store) or
#: pure-Python decision procedure on learners that expose the knob.
COVERAGE_STRATEGIES = (
    "auto",
    "subsumption",
    "subsumption-compiled",
    "subsumption-python",
    "query",
)

#: Backends whose evaluation rides a sharded worker fleet (the only ones an
#: explicit ``shards=`` makes sense on).
SHARDED_BACKENDS = ("sqlite-sharded",)

_COMPILED_BY_STRATEGY = {
    "subsumption-compiled": True,
    "subsumption-python": False,
}

@dataclass(frozen=True)
class SessionConfig:
    """Validated evaluation configuration for a learning session.

    Parameters
    ----------
    backend:
        Storage/evaluation backend instances are materialized on
        (``memory``/``sqlite``/``sqlite-pooled``/``sqlite-sharded``/
        ``sqlite-remote``); ``None`` leaves instances as given.
    parallelism:
        Clause-scoring fan-out on learners that expose the knob.  Results
        are identical for every value; only wall-clock time changes.
    shards:
        Worker-process count on sharded backends.  Like ``parallelism``,
        never changes results.
    coverage:
        One of :data:`COVERAGE_STRATEGIES`; ``auto`` (default) keeps each
        learner's own engine choice.
    reuse_saturation_store:
        Share one warm :class:`~repro.database.sqlite_backend.SaturationStore`
        across the folds/runs a session drives over one instance.
    presaturate:
        Materialize every example's saturation into the shared store before
        learning starts (one batched call, fanned across worker fleets on
        sharded backends).
    sharding_strategy / transport:
        Service topology knobs of the ``sqlite-sharded`` backend
        (``hash``/``round-robin``/``size-balanced``; ``pipe``/``socket``).
    service_address:
        ``HOST:PORT`` of a persistent evaluation server
        (``python -m repro.distributed.service --serve``).  Sessions built
        from such a config evaluate on the server's warm worker fleet
        instead of spawning their own.
    instance_handle:
        Optional namespace instances register under on the persistent
        server; the full handle is content-qualified
        (``name:contenthash``, or ``auto-<contenthash>`` without a name),
        so repeat runs over the same data land on the same warm
        server-side instance and distinct datasets never collide.
    auth_token:
        Shared secret presented in the wire handshake when the persistent
        server was started with ``--auth-token``; without (or with a
        wrong) token every request is rejected with a typed error.
    request_timeout:
        Per-request deadline (seconds) on the server connection.  A hung
        server surfaces as :class:`~repro.distributed.TransportError`
        instead of blocking ``learn()`` forever; ``None`` (default) waits
        indefinitely.
    trace:
        Enable end-to-end span tracing for this session (see
        :mod:`repro.obs`).  Every ``session.run`` then records a span tree
        covering learner phases, RPC round-trips, and — on remote/sharded
        backends — the server's and shard workers' spans, all under one
        trace id.  Dump with :meth:`LearningSession.trace_dump`.  Off by
        default: the disabled path costs one attribute check per
        would-be span.
    """

    backend: Optional[str] = None
    parallelism: Optional[int] = None
    shards: Optional[int] = None
    coverage: str = "auto"
    reuse_saturation_store: bool = True
    presaturate: bool = False
    sharding_strategy: Optional[str] = None
    transport: Optional[str] = None
    service_address: Optional[str] = None
    instance_handle: Optional[str] = None
    auth_token: Optional[str] = None
    request_timeout: Optional[float] = None
    trace: bool = False

    def __post_init__(self) -> None:
        if self.parallelism is not None:
            object.__setattr__(self, "parallelism", int(self.parallelism))
        if self.shards is not None:
            object.__setattr__(self, "shards", int(self.shards))
        self.validate()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Reject incoherent combinations with actionable messages."""
        if self.backend is not None and self.backend not in backend_names():
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"available: {list(backend_names())}"
            )
        if self.coverage not in COVERAGE_STRATEGIES:
            raise ValueError(
                f"unknown coverage strategy {self.coverage!r}; "
                f"available: {list(COVERAGE_STRATEGIES)}"
            )
        if self.parallelism is not None and self.parallelism < 1:
            raise ValueError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        self._validate_service_address()
        self._validate_backend_combos()
        if self.presaturate and not self.reuse_saturation_store:
            raise ValueError(
                "presaturate=True warms the shared saturation store, which "
                "reuse_saturation_store=False disables; enable the shared "
                "store or drop presaturate"
            )
        if self.presaturate and self.coverage == "query":
            raise ValueError(
                "coverage='query' has no saturations to warm; drop "
                "presaturate=True or use a subsumption strategy"
            )

    def _validate_service_address(self) -> None:
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError(
                "request_timeout must be > 0 seconds, got "
                f"{self.request_timeout!r}"
            )
        if self.service_address is None:
            for knob, value in (
                ("auth_token", self.auth_token),
                ("request_timeout", self.request_timeout),
            ):
                if value is not None:
                    # Note: never echo the token value into the message.
                    raise ValueError(
                        f"{knob}= configures the connection to a persistent "
                        "evaluation server; set service_address='HOST:PORT' "
                        "as well"
                    )
            if self.backend == "sqlite-remote":
                raise ValueError(
                    "backend='sqlite-remote' evaluates on a persistent "
                    "server; set service_address='HOST:PORT' (start one "
                    "with `python -m repro.distributed.service --serve`)"
                )
            return
        from ..distributed.protocol import parse_address

        try:
            parse_address(self.service_address)
        except ValueError as exc:
            raise ValueError(
                "service_address must be 'HOST:PORT', got "
                f"{self.service_address!r}"
            ) from exc
        if self.backend not in (None, "sqlite-remote"):
            raise ValueError(
                "service_address= evaluates on the persistent server's "
                f"warm workers; backend={self.backend!r} would spawn a "
                "local fleet instead — drop backend= (or use "
                "'sqlite-remote')"
            )
        for knob, value in (
            ("shards", self.shards),
            ("sharding_strategy", self.sharding_strategy),
            ("transport", self.transport),
        ):
            if value is not None:
                raise ValueError(
                    f"{knob}={value!r} is fixed when the persistent server "
                    "starts (see `python -m repro.distributed.service "
                    "--serve --help`); it cannot be set per session"
                )

    def _validate_backend_combos(self) -> None:
        backend = self.backend
        if self.shards is not None and backend is not None and (
            backend not in SHARDED_BACKENDS
        ):
            raise ValueError(
                f"shards={self.shards} needs a sharded evaluation service, "
                f"but backend {backend!r} has none; use "
                "backend='sqlite-sharded' (see docs/distributed.md)"
            )
        if (
            self.parallelism is not None
            and self.parallelism > 1
            and backend == "sqlite"
        ):
            raise ValueError(
                f"parallelism={self.parallelism} cannot fan out on the "
                "single-connection 'sqlite' backend (every statement "
                "serializes on one connection); use 'sqlite-pooled' "
                "(snapshot read pool), 'sqlite-sharded', or 'memory'"
            )
        if self.sharding_strategy is not None:
            from ..distributed.sharding import SHARDING_STRATEGIES

            if self.sharding_strategy not in SHARDING_STRATEGIES:
                raise ValueError(
                    f"unknown sharding strategy {self.sharding_strategy!r}; "
                    f"available: {list(SHARDING_STRATEGIES)}"
                )
            if backend is not None and backend not in SHARDED_BACKENDS:
                raise ValueError(
                    f"sharding_strategy={self.sharding_strategy!r} only "
                    f"applies to sharded backends, not {backend!r}; use "
                    "backend='sqlite-sharded'"
                )
        if self.transport is not None:
            from ..distributed.service import TRANSPORTS

            if self.transport not in TRANSPORTS:
                raise ValueError(
                    f"unknown transport {self.transport!r}; "
                    f"available: {list(TRANSPORTS)}"
                )
            if backend is not None and backend not in SHARDED_BACKENDS:
                raise ValueError(
                    f"transport={self.transport!r} only applies to sharded "
                    f"backends, not {backend!r}; use "
                    "backend='sqlite-sharded'"
                )

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def merged(self, **overrides: object) -> "SessionConfig":
        """A copy with the non-``None`` overrides applied (re-validated)."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        if not changes:
            return self
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Normalization (the old _apply_parallelism/_apply_shards, unified)
    # ------------------------------------------------------------------ #
    def apply(
        self,
        learner: Any = None,
        instance: Any = None,
        saturation_store: Any = None,
        _session_managed: bool = False,
    ) -> Any:
        """Push this config onto a learner and/or an instance.

        The single normalization path shared by sessions, the experiment
        harness, and the deprecated per-knob helpers.  Settings land on
        learners that expose the matching attribute; an explicit setting a
        learner cannot honor warns once per distinct situation — never
        silently ignored, never an error (these knobs only move work;
        results are identical for every value).

        ``instance`` additionally receives the ``shards`` topology through
        :func:`~repro.database.backend.configure_backend_sharding`.
        ``saturation_store`` is handed to learners with the knob (learners
        without saturations — FOIL's query coverage — skip it silently, as
        there is nothing a store could change).  ``_session_managed`` is
        set by :class:`~repro.session.session.LearningSession`, whose
        ``prepare()`` owns instance routing — the ``backend`` knob then
        stays off the learner entirely.
        """
        if learner is not None:
            if self.parallelism is not None:
                if hasattr(learner, "parallelism"):
                    learner.parallelism = self.parallelism
                else:
                    warn_once(
                        f"learner {type(learner).__name__} has no "
                        "'parallelism' knob; ignoring "
                        f"parallelism={self.parallelism}"
                    )
            if self.backend == "sqlite-remote":
                # A bare with_backend("sqlite-remote") conversion cannot
                # carry the server connection; only a LearningSession can
                # (its prepare() binds the backend to the session's
                # client), so there is nothing to push either way.
                if not _session_managed:
                    warn_once(
                        "backend='sqlite-remote' needs a LearningSession "
                        "to carry the server connection; construct "
                        "learners via LearningSession.connect(...)"
                        ".learner(...) — ignoring backend= on this bare "
                        "context path"
                    )
            elif self.backend is not None:
                # Pushed on the session-managed path too: a learner built
                # with context=<session> but driven outside session.learner
                # must still honor the configured backend (its learn() then
                # converts per call — the documented legacy knob semantics;
                # prepared instances already match, so the push is a no-op
                # there).
                if hasattr(learner, "backend"):
                    learner.backend = self.backend
                else:
                    warn_once(
                        f"learner {type(learner).__name__} has no 'backend' "
                        f"knob; ignoring backend={self.backend!r}"
                    )
            elif self.service_address is not None and not _session_managed:
                # A connect-shaped config (address, no backend) only
                # reaches the server through a session that owns the
                # connection; a bare context would otherwise look remote
                # while evaluating entirely locally.
                warn_once(
                    f"service_address={self.service_address!r} has no "
                    "effect on a bare context= learner; use "
                    f"LearningSession.connect({self.service_address!r})"
                    ".learner(...) to evaluate on the persistent server "
                    "— this learner will evaluate locally"
                )
            if self.shards is not None and instance is None:
                if hasattr(learner, "shards"):
                    learner.shards = self.shards
                else:
                    warn_once(
                        f"learner {type(learner).__name__} has no 'shards' "
                        f"knob; ignoring shards={self.shards}"
                    )
            if self.coverage != "auto":
                compiled = _COMPILED_BY_STRATEGY.get(self.coverage)
                native_subsumption = hasattr(learner, "compiled_coverage")
                if compiled is not None:
                    if native_subsumption:
                        learner.compiled_coverage = compiled
                    else:
                        warn_once(
                            f"learner {type(learner).__name__} has no "
                            "compiled-subsumption knob; ignoring coverage="
                            f"{self.coverage!r}"
                        )
                else:
                    # 'subsumption'/'query' name an engine family; each
                    # learner's family is fixed, so the value is honored
                    # when it matches and warned about when it cannot be.
                    native = "subsumption" if native_subsumption else "query"
                    if self.coverage != native:
                        warn_once(
                            f"learner {type(learner).__name__} always uses "
                            f"{native} coverage; ignoring coverage="
                            f"{self.coverage!r}"
                        )
            if saturation_store is not None and hasattr(
                learner, "saturation_store"
            ):
                learner.saturation_store = saturation_store
        if instance is not None:
            self._configure_instance(instance)
        return learner

    def _configure_instance(self, instance: Any) -> None:
        """Push the full service topology — shards, strategy, transport —
        onto the instance's backend (warn-once where it has none)."""
        if (
            self.shards is None
            and self.sharding_strategy is None
            and self.transport is None
        ):
            return
        configure = getattr(instance.backend, "configure_sharding", None)
        if configure is not None:
            configure(
                shards=self.shards,
                strategy=self.sharding_strategy,
                transport=self.transport,
            )
            return
        if self.shards is not None:
            configure_backend_sharding(instance.backend, self.shards)
        if self.sharding_strategy is not None or self.transport is not None:
            warn_once(
                f"backend {getattr(instance.backend, 'name', '?')!r} has no "
                "sharded evaluation service; ignoring sharding_strategy="
                f"{self.sharding_strategy!r} / transport={self.transport!r}"
            )
