"""Unified session API: one validated config, one owner for every resource.

* :class:`SessionConfig` — backend, parallelism, shards, coverage strategy,
  and saturation policy in one validated dataclass (replaces the ``backend=``
  / ``parallelism=`` / ``shards=`` / ``saturation_store=`` / ``presaturate=``
  knob soup);
* :class:`LearningSession` — owns backend + evaluation-service +
  saturation-store lifecycle, hands out learners
  (``session.learner("castor", schema, params)``) and drives the experiment
  harness (``session.run(...)``);
* :func:`connect` — bind a session to a persistent evaluation server
  (``python -m repro.distributed.service --serve HOST:PORT``) whose warm
  worker fleets outlive individual learning runs.

See ``docs/session.md`` for the tour and the old-kwarg migration table.
"""

from .config import COVERAGE_STRATEGIES, SessionConfig
from .session import LearningSession, SessionLearner, connect

__all__ = [
    "COVERAGE_STRATEGIES",
    "LearningSession",
    "SessionConfig",
    "SessionLearner",
    "connect",
]
