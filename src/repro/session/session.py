"""`LearningSession`: the single front door to the learning stack.

A session owns everything a learning run used to assemble by hand — the
storage backend instances are materialized on, the evaluation service (or
the connection to a persistent one), and the shared saturation store — and
hands out learners already normalized onto one validated
:class:`~repro.session.config.SessionConfig`::

    from repro import LearningSession, SessionConfig

    with LearningSession(SessionConfig(backend="sqlite-pooled", parallelism=4)) as session:
        learner = session.learner("castor", schema, parameters)
        definition = learner.learn(instance, examples)
        result = session.run(bundle, "original", "progolem", folds=3)

Repeated runs through one session reuse the prepared instances, the warm
worker fleets, and the saturation stores — the second run starts warm.

``LearningSession.connect("host:port")`` binds the session to a
**persistent evaluation server** (``python -m repro.distributed.service
--serve``) instead: instances register under content-hashed handles, and a
run over data the server has already seen ships no payload at all — the
warm fleet of the previous run (or of another user's session) serves it
directly.

Lifecycle safety: sessions are context managers, ``close()`` is
idempotent, and every session registers an ``atexit`` hook so abandoned
sessions cannot leak worker processes from aborted runs.
"""

from __future__ import annotations

import copy
import pickle  # repro: noqa[REP001] -- dumps-only structural fingerprint for store sharing; bytes never cross a process boundary and nothing is ever unpickled
import threading
import weakref
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..database.delta import Delta
from ..database.instance import DatabaseInstance
from ..database.sqlite_backend import SaturationStore
from ..obs import registry as obs_registry, span as obs_span, tracer as obs_tracer
from .config import SessionConfig, warn_once

if TYPE_CHECKING:  # resolved lazily at runtime; annotations only
    from ..distributed.client import ServiceClient
    from ..learning.examples import ExampleSet


def _learner_kinds() -> Dict[str, type]:
    """Name -> class registry for ``session.learner("castor", ...)``.

    Resolved lazily so importing :mod:`repro.session` does not drag in
    every learner package.
    """
    from ..castor.castor import CastorLearner
    from ..foil.foil import FoilLearner
    from ..golem.golem import GolemLearner
    from ..progol.progol import AlephFoilLearner, ProgolLearner
    from ..progolem.progolem import ProGolemLearner

    return {
        "castor": CastorLearner,
        "foil": FoilLearner,
        "golem": GolemLearner,
        "progolem": ProGolemLearner,
        "progol": ProgolLearner,
        "aleph-foil": AlephFoilLearner,
    }


def _resolve_kind(kind: str) -> type:
    kinds = _learner_kinds()
    try:
        return kinds[kind]
    except KeyError as exc:
        raise ValueError(
            f"unknown learner kind {kind!r}; available: {sorted(kinds)}"
        ) from exc


class SessionLearner:
    """A learner bound to its session: ``learn()`` rides the session's
    prepared instances, shared stores, and presaturation policy.

    Everything else (parameters, name, knobs) delegates to the wrapped
    learner, so the wrapper stays invisible to code that inspects it.
    """

    def __init__(self, session: "LearningSession", learner: Any) -> None:
        self._session = session
        self._learner = learner

    @property
    def wrapped(self) -> Any:
        """The underlying learner object."""
        return self._learner

    def learn(self, instance: DatabaseInstance, examples: "ExampleSet") -> Any:
        session = self._session
        prepared = session.prepare(instance)
        # Lazy like the harness path: no SQLite-backed store is ever opened
        # for learners without the knob (FOIL's query coverage).
        store = (
            session.saturation_store_for(prepared, self._learner)
            if hasattr(self._learner, "saturation_store")
            else None
        )
        session.apply(self._learner, instance=prepared, saturation_store=store)
        if session.config.presaturate:
            session.presaturate(self._learner, prepared, examples)
        return self._learner.learn(prepared, examples)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._learner, name)

    def __setattr__(self, name: str, value: Any) -> None:
        # Writes configure the wrapped learner (a wrapper-local attribute
        # would shadow reads while learn() ignored the setting).
        if name in ("_session", "_learner"):
            object.__setattr__(self, name, value)
        else:
            setattr(self._learner, name, value)

    def __repr__(self) -> str:
        return f"SessionLearner({self._learner!r})"


class _SessionResources:
    """The closeable resources a session creates, owned separately.

    Split out so the session's exit-safety hook can be a
    ``weakref.finalize`` on this object: an abandoned session (no
    ``close()``) stays garbage-collectable — its resources are reclaimed
    when the session is collected or at interpreter exit — whereas an
    ``atexit``-registered bound method would pin every un-closed session,
    its prepared instances, and its stores for the whole process lifetime.
    """

    def __init__(self) -> None:
        self.backends: List[object] = []
        self.bundles: List[object] = []
        self.client = None

    def close(self) -> None:
        # Best-effort per resource: one failing fleet teardown must not
        # leak every remaining fleet and the server connection (this runs
        # once — from close() or the finalizer — so nothing retries).
        bundles, self.bundles = self.bundles, []
        backends, self.backends = self.backends, []
        first_error = None
        for resource in bundles + backends:
            close = getattr(resource, "close", None)
            if close is None:
                continue
            try:
                close()
            except Exception as exc:  # noqa: BLE001 - keep closing the rest
                first_error = first_error or exc
        if self.client is not None:
            try:
                self.client.close()
            finally:
                self.client = None
        if first_error is not None:
            raise first_error


class LearningSession:
    """Owner of backend + evaluation-service + saturation-store lifecycle."""

    def __init__(
        self, config: Optional[SessionConfig] = None, **overrides: object
    ) -> None:
        if config is None:
            config = SessionConfig(**overrides)
        elif overrides:
            config = config.merged(**overrides)
        self.config = config
        self._lock = threading.RLock()
        # id(source) -> (source, prepared, data token, owned backend); the
        # source reference pins the id so Python cannot recycle it for a
        # different instance, and the token notices mutations.
        self._instances: Dict[
            int,
            Tuple[DatabaseInstance, DatabaseInstance, object, Optional[object]],
        ] = {}
        # id(source bundle) -> (source, converted) — same pinning trick, so
        # repeated sweeps over one bundle reuse one converted bundle (and
        # therefore one set of materialized instances and warm stores).
        self._bundles: Dict[int, Tuple[object, object]] = {}
        self._stores: Dict[object, SaturationStore] = {}
        self._closed = False
        self._resources = _SessionResources()
        if config.trace:
            self.enable_tracing()
        if config.service_address is not None:
            from ..distributed.client import ServiceClient

            self._resources.client = ServiceClient(
                config.service_address,
                token=config.auth_token,
                request_timeout=config.request_timeout,
            )
        # Abandoned sessions (aborted scripts, crashed notebooks) must not
        # leak worker fleets: the finalizer runs on garbage collection and
        # at interpreter exit, and close() triggers it explicitly.
        self._finalizer = weakref.finalize(self, self._resources.close)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def connect(
        cls,
        address: str,
        config: Optional[SessionConfig] = None,
        token: Optional[str] = None,
        request_timeout: Optional[float] = None,
        **overrides: object,
    ) -> "LearningSession":
        """A session evaluating on the persistent server at ``address``.

        ``token`` authenticates against a server started with
        ``--auth-token``; ``request_timeout`` bounds every round-trip so a
        hung server raises instead of blocking ``learn()`` forever.
        """
        base = config or SessionConfig()
        return cls(
            base.merged(
                service_address=str(address),
                auth_token=token,
                request_timeout=request_timeout,
                **overrides,
            )
        )

    @property
    def client(self) -> "Optional[ServiceClient]":
        """The :class:`~repro.distributed.client.ServiceClient`, if remote."""
        return self._resources.client

    @property
    def is_remote(self) -> bool:
        return self._resources.client is not None

    # ------------------------------------------------------------------ #
    # Instances and stores
    # ------------------------------------------------------------------ #
    def prepare(self, instance: DatabaseInstance) -> DatabaseInstance:
        """The instance on this session's backend (cached per source).

        Local sessions convert onto ``config.backend`` (once — repeated
        runs over the same source instance reuse the converted one and its
        warm evaluation service).  Remote sessions re-materialize onto a
        ``"sqlite-remote"`` backend bound to the session's server
        connection.  Either way the full sharding topology is (re)applied.

        The cache watches the source's :meth:`~DatabaseInstance.data_token`:
        a mutation between runs re-converts the instance and drops its
        saturation stores (whose clauses describe the old data), so
        session runs always see current contents — same semantics as the
        legacy per-``learn()`` conversion, minus the cost when nothing
        changed.
        """
        self._ensure_open()
        with self._lock:
            key = id(instance)
            token = instance.data_token()
            entry = self._instances.get(key)
            if entry is not None and entry[2] != token:
                self._invalidate_locked(key, entry)
                entry = None
            if entry is None:
                prepared, owned = self._prepare_uncached(instance)
                entry = self._instances[key] = (instance, prepared, token, owned)
                # From here on, direct add/remove on the prepared instance
                # warns once (it forces the wholesale re-conversion above);
                # transaction()/update() mutations are patched in place.
                prepared.mark_managed()
            prepared = entry[1]
            self.config.apply(instance=prepared)
            return prepared

    def _invalidate_locked(
        self,
        key: int,
        entry: Tuple[DatabaseInstance, DatabaseInstance, object, Optional[object]],
    ) -> None:
        """Drop a stale prepared instance: its conversion and its stores
        describe the pre-mutation data."""
        del self._instances[key]
        _source, prepared, _token, owned = entry
        stale = id(prepared)
        for store_key in [k for k in self._stores if k[0] == stale]:
            del self._stores[store_key]
        if owned is not None:
            remote = getattr(owned, "remote_service", None)
            client = self._resources.client
            if remote is not None and remote.handle is not None and client is not None:
                # The superseded data's server-side handle (and its fleet)
                # is retired instead of idling until LRU eviction; another
                # session still on it just re-registers (one re-ship).
                try:
                    client.unregister(remote.handle)
                except Exception:  # noqa: BLE001 - best-effort hygiene
                    pass
            try:
                self._resources.backends.remove(owned)
            except ValueError:
                pass
            close = getattr(owned, "close", None)
            if close is not None:
                close()

    def _prepare_uncached(
        self, instance: DatabaseInstance
    ) -> Tuple[DatabaseInstance, Optional[object]]:
        """Convert onto the session backend; returns (prepared, owned backend)."""
        client = self._resources.client
        if client is not None:
            from ..distributed.client import RemoteBackend

            # The handle name is content-qualified by the backend at
            # registration time, so distinct instances under one named
            # namespace never collide (and never depend on preparation
            # order).
            backend = RemoteBackend(
                client=client, handle=self.config.instance_handle
            )
            prepared = instance.with_backend(backend)
            self._resources.backends.append(backend)
            return prepared, backend
        if (
            self.config.backend is not None
            and self.config.backend != instance.backend_name
        ):
            prepared = instance.with_backend(self.config.backend)
            self._resources.backends.append(prepared.backend)
            return prepared, prepared.backend
        return instance, None

    def prepare_bundle(self, bundle: Any) -> Any:
        """The bundle converted onto this session's backend (cached).

        ``DatasetBundle.with_backend`` returns a *fresh* bundle with an
        empty per-variant instance cache, so converting on every harness
        call would make repeat sweeps fully cold (and grow the session's
        id-keyed caches without bound).  Caching the conversion per source
        bundle keeps the variant instances — and everything keyed on their
        identity: prepared instances, warm fleets, saturation stores —
        stable across calls.
        """
        self._ensure_open()
        backend = self.config.backend
        if backend is None or self.is_remote:
            # Remote sessions (and backend-less ones) convert per instance
            # in prepare(); the bundle itself is reused as-is.
            return bundle
        with self._lock:
            key = id(bundle)
            entry = self._bundles.get(key)
            if entry is None:
                converted = bundle.with_backend(backend)
                if converted is not bundle:
                    # Converted bundles own their variants' backends
                    # (worker fleets included); an unconverted bundle is
                    # the caller's and stays untouched at close().
                    self._resources.bundles.append(converted)
                entry = self._bundles[key] = (bundle, converted)
            return entry[1]

    def saturation_store_for(
        self, instance: DatabaseInstance, learner: Any = None
    ) -> Optional[SaturationStore]:
        """The shared warm store for a prepared instance (or ``None`` when
        ``reuse_saturation_store=False``).

        Stores are keyed per (instance, learner configuration): the store
        dedups saturations by example only, so two learners whose builders
        construct *different* saturations for one example (Castor's IND
        chase vs ProGolem at another depth) must never share one — the
        second learner would answer compiled coverage from the first's
        clauses.  Same-configured learners (cross-validation folds, repeat
        runs of one spec) land on the same warm store.
        """
        if not self.config.reuse_saturation_store:
            return None
        key = (id(instance), self._learner_fingerprint(learner))
        with self._lock:
            store = self._stores.get(key)
            if store is None:
                store = self._stores[key] = SaturationStore()
            return store

    @staticmethod
    def _learner_fingerprint(learner: Any) -> object:
        """Everything saturation-relevant about a learner, hashable.

        Over-keying is safe (it only loses sharing); under-keying answers
        coverage from a foreign builder's saturations.  The parameters
        object carries the bottom-clause config plus Castor's IND options;
        unpicklable parameters fall back to no sharing at all.
        """
        if learner is None:
            return None
        try:
            return pickle.dumps(
                (type(learner).__qualname__, getattr(learner, "parameters", None)),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:  # noqa: BLE001 - exotic parameters: isolate, don't fail
            return id(learner)

    def store_supplier(
        self, instance: DatabaseInstance
    ) -> Optional[Callable[..., SaturationStore]]:
        """Lazy-store variant of :meth:`saturation_store_for` (no SQLite
        connection is opened for learners that never ask).  Callers pass
        the learner so stores stay keyed per saturation configuration."""
        if not self.config.reuse_saturation_store:
            return None
        return lambda learner=None: self.saturation_store_for(instance, learner)

    # ------------------------------------------------------------------ #
    # Incremental updates
    # ------------------------------------------------------------------ #
    def update(self, instance: DatabaseInstance, delta: Delta) -> Delta:
        """Apply a :class:`~repro.database.delta.Delta` through the session.

        The streaming-update front door: where a direct mutation between
        runs makes :meth:`prepare` throw away the converted instance, its
        warm worker fleet, and every saturation store keyed on it, this
        patches each of those in place —

        * the source *and* the session's converted instance replay the
          delta (one transaction each, so sharded/remote backends log one
          coalesced change record);
        * shared :class:`SaturationStore`\\ s drop exactly the saturations
          whose footprint the delta touches (untouched examples stay warm;
          dropped ones rebuild lazily on next use);
        * a live local worker fleet is re-synced now (workers replay the
          delta and repair their engine caches), and a remote session
          ships one ``apply_delta`` frame instead of the full payload;
        * the cached data token advances, so the next :meth:`prepare` is a
          cache hit instead of a wholesale invalidation.

        An instance the session has not prepared yet just replays the delta
        onto the source.  Returns ``delta`` for chaining.
        """
        self._ensure_open()
        if not isinstance(delta, Delta):
            raise TypeError(
                f"update() takes a Delta, got {type(delta).__name__}; "
                "build one with Delta.add/Delta.remove or session.feed()"
            )
        with self._lock:
            entry = self._instances.get(id(instance))
        if entry is None:
            instance.apply_delta(delta)
            return delta
        source, prepared, _token, owned = entry
        source.apply_delta(delta)
        if prepared is not source:
            prepared.apply_delta(delta)
        touched = delta.touched_values()
        with self._lock:
            stale = id(prepared)
            stores = [
                store for key, store in self._stores.items() if key[0] == stale
            ]
            # Advance the token under the lock BEFORE patching stores: a
            # concurrent prepare() must either see the old token (and
            # invalidate wholesale — correct, just cold) or the new one
            # (and reuse state this update is about to finish patching).
            self._instances[id(instance)] = (
                source, prepared, source.data_token(), owned
            )
        for store in stores:
            store.invalidate_touching(touched)
        backend = prepared.backend
        local_service = getattr(backend, "_service", None)
        sync = getattr(local_service, "sync", None)
        if sync is not None:
            # Live fleets replay the delta now (and repair engines in
            # place); cold ones stay cold and build from current data.
            sync()
        remote = getattr(backend, "remote_service", None)
        if remote is not None and remote.handle is not None:
            # One apply_delta frame (or, on divergence, a full re-ship).
            remote._ensure_registered()
        return delta

    def feed(
        self,
        instance: DatabaseInstance,
        add: Optional[Dict[str, object]] = None,
        remove: Optional[Dict[str, object]] = None,
    ) -> Delta:
        """Streaming shorthand for :meth:`update`.

        ``add``/``remove`` map relation names to iterables of rows::

            session.feed(instance,
                         add={"advisedBy": [("p1", "s9")]},
                         remove={"student": [("s3",)]})

        builds one coalesced :class:`Delta` (removes after adds, matching
        keyword order here: adds first) and routes it through
        :meth:`update`.
        """
        ops = []
        for op_name, mapping in (("add", add), ("remove", remove)):
            for relation, rows in (mapping or {}).items():
                ops.append(
                    (op_name, relation, tuple(tuple(row) for row in rows))
                )
        return self.update(instance, Delta(ops).coalesced())

    # ------------------------------------------------------------------ #
    # Learners
    # ------------------------------------------------------------------ #
    def apply(
        self,
        learner: Any,
        instance: Optional[DatabaseInstance] = None,
        saturation_store: Optional[SaturationStore] = None,
    ) -> Any:
        """Normalize a learner onto this session's config (see
        :meth:`SessionConfig.apply`); lets a session double as the
        ``context=`` argument of any learner constructor.  Instance
        routing stays with :meth:`prepare`, so the learner never receives
        a ``backend`` knob it would re-apply per ``learn()``."""
        return self.config.apply(
            learner,
            instance=instance,
            saturation_store=saturation_store,
            _session_managed=True,
        )

    def learner(
        self,
        kind: "str | type",
        schema: Any,
        parameters: Any = None,
        **kwargs: Any,
    ) -> SessionLearner:
        """Construct a learner bound to this session.

        ``kind`` is a registry name (``"castor"``, ``"progolem"``,
        ``"golem"``, ``"foil"``, ``"progol"``, ``"aleph-foil"``) or a
        learner class.  The learner is built with the uniform
        ``context=`` path and wrapped so that ``learn()`` runs on the
        session's prepared instances and shared stores.
        """
        self._ensure_open()
        cls = _resolve_kind(kind) if isinstance(kind, str) else kind
        # The session itself is the context, so instance routing stays
        # session-managed (prepare() handles backends, including remote).
        # ``parameters`` goes by keyword: positionally it would land in
        # e.g. AlephFoilLearner's clause_length slot.
        if parameters is None:
            learner = cls(schema, context=self, **kwargs)
        else:
            learner = cls(schema, parameters=parameters, context=self, **kwargs)
        return SessionLearner(self, learner)

    def presaturate(
        self, learner: Any, instance: DatabaseInstance, examples: "ExampleSet"
    ) -> None:
        """Warm the shared saturation store for a whole example set.

        Builds the learner's coverage engine once and materializes every
        example's saturation through the batched entry point — one call,
        fanned across the worker fleet on sharded/remote backends — so
        learning starts from a warm store.  Warns once (never errors) for
        learners/engines without the machinery.
        """
        make_engine = getattr(learner, "make_coverage_engine", None)
        if make_engine is None:
            warn_once(
                f"learner {type(learner).__name__} has no coverage-engine "
                "factory; ignoring presaturate=True"
            )
            return
        store = self.saturation_store_for(instance, learner)
        if store is None:
            warn_once(
                "presaturate=True has no effect with "
                "reuse_saturation_store=False; ignoring it"
            )
            return
        self.apply(learner, saturation_store=store)
        engine = make_engine(instance)
        materialize = getattr(engine, "materialize", None)
        if materialize is None or not getattr(engine, "compiled_enabled", False):
            # Without the compiled store the warm-up would only fill this
            # throwaway engine's private cache — skip instead of double-paying.
            warn_once(
                "presaturate=True has no shared store to warm on "
                f"{type(engine).__name__} (backend "
                f"{getattr(instance, 'backend_name', '?')!r}); ignoring it"
            )
            return
        materialize(examples.all_examples())

    # ------------------------------------------------------------------ #
    # Harness entry points
    # ------------------------------------------------------------------ #
    def run(
        self,
        bundle: Any,
        variant_name: str,
        learner: Any,
        folds: int = 3,
        seed: int = 0,
        parameters: Any = None,
    ) -> Any:
        """Cross-validate one learner on one schema variant (see
        :func:`repro.experiments.harness.run_variant`)."""
        from ..experiments.harness import run_variant

        spec = self._as_spec(learner, parameters)
        # The root of the trace tree: every learner-phase span, RPC span,
        # and (via span shipping) server/worker span of this run hangs off
        # it under one trace id.
        with obs_span(
            "session.run",
            variant=str(variant_name),
            learner=spec.name,
            folds=int(folds),
        ):
            return run_variant(
                bundle, variant_name, spec, folds=folds, seed=seed, session=self
            )

    def sweep(
        self,
        bundle: Any,
        learners: "list[Any] | tuple[Any, ...]",
        variants: Optional[List[str]] = None,
        folds: int = 3,
        seed: int = 0,
    ) -> Any:
        """Every learner on every schema variant (one of the paper's tables)."""
        from ..experiments.harness import run_schema_sweep

        specs = [self._as_spec(learner) for learner in learners]
        with obs_span("session.sweep", learners=len(specs)):
            return run_schema_sweep(
                bundle, specs, variants=variants, folds=folds, seed=seed,
                session=self,
            )

    def check_schema_independence(
        self,
        bundle: Any,
        learner: Any,
        variants: Optional[List[str]] = None,
        seed: int = 0,
    ) -> Any:
        """Direct empirical schema-independence check (Definition 3.10)."""
        from ..experiments.harness import check_schema_independence

        return check_schema_independence(
            bundle, self._as_spec(learner), variants=variants, seed=seed,
            session=self,
        )

    def _as_spec(self, learner: Any, parameters: Any = None) -> Any:
        from ..experiments.harness import LearnerSpec

        if isinstance(learner, LearnerSpec):
            return learner
        if isinstance(learner, SessionLearner):
            learner = learner.wrapped
        if isinstance(learner, str) or isinstance(learner, type):
            cls = _resolve_kind(learner) if isinstance(learner, str) else learner
            name = learner if isinstance(learner, str) else cls.__name__
            if parameters is None:
                return LearnerSpec(name, lambda schema: cls(schema))
            # By keyword: positionally it would land in e.g.
            # AlephFoilLearner's clause_length slot.
            return LearnerSpec(
                name, lambda schema: cls(schema, parameters=parameters)
            )
        # A constructed learner object: reused for every fold (learners
        # rebuild their engines per learn(), so this is re-entrant).  The
        # schema must follow the variant being learned — keeping the
        # construction-time schema would silently run e.g. Castor's IND
        # chase against the wrong relation set on every other variant of a
        # sweep — but the caller's object is never mutated: a different
        # variant gets a shallow per-variant clone (config state only;
        # engines are built per learn()).
        name = getattr(learner, "name", type(learner).__name__)

        def rebind(schema: Any) -> Any:
            if (
                schema is None
                or not hasattr(learner, "schema")
                or schema is learner.schema
            ):
                return learner
            clone = copy.copy(learner)
            clone.schema = schema
            return clone

        return LearnerSpec(name, rebind)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def evaluation_stats(self) -> Dict[str, int]:
        """Aggregate service counters over this session's instances.

        ``reloads_full`` is the number of full instance payloads shipped —
        the warm-run acceptance number (0 on a repeat run against a
        persistent server that already holds the data).
        """
        totals = {
            "reloads_full": 0,
            "reloads_incremental": 0,
            "register_hits": 0,
            "batches_served": 0,
        }
        with self._lock:
            prepared_list = [entry[1] for entry in self._instances.values()]
        for prepared in prepared_list:
            backend = prepared.backend
            service = getattr(backend, "remote_service", None)
            if service is None:
                service = getattr(backend, "_service", None)
            if service is None:
                continue
            for key in totals:
                totals[key] += int(getattr(service, key, 0))
        return totals

    @property
    def reloads_full(self) -> int:
        return self.evaluation_stats()["reloads_full"]

    def server_stats(self) -> Optional[Dict[str, object]]:
        """The persistent server's global stats (``None`` for local sessions)."""
        client = self.client
        return None if client is None else client.server_stats()

    # ------------------------------------------------------------------ #
    # Observability (see docs/observability.md)
    # ------------------------------------------------------------------ #
    def metrics(self) -> Dict[str, object]:
        """Unified metrics: this process's registry snapshot, plus the
        persistent server's when the session is remote.

        Both halves use the same shape (``name{labels} -> value`` for
        counters/gauges, summary dicts for histograms), so dashboards can
        merge them without translation; ``server`` additionally carries the
        server registry's Prometheus text exposition.
        """
        self._ensure_open()
        result: Dict[str, object] = {"local": obs_registry().snapshot()}
        client = self.client
        if client is not None:
            result["server"] = client.server_metrics()
        return result

    def enable_tracing(self, process: str = "client") -> None:
        """Start recording spans (idempotent; ``config.trace=True`` calls
        this at construction).  ``process`` labels this process's spans in
        dumps — the server and its workers label their own."""
        obs_tracer().enable(process=process)

    def disable_tracing(self) -> None:
        obs_tracer().disable()

    def trace_records(self) -> List[Dict[str, object]]:
        """Every span recorded so far (local + shipped back from the
        server/workers), as plain dicts."""
        return [record.to_dict() for record in obs_tracer().records()]

    def trace_dump(self, path: str, chrome: bool = False) -> str:
        """Write the recorded trace to ``path`` and return the path.

        Default format is the ``repro-trace`` JSON consumed by
        ``python -m repro.obs.report``; ``chrome=True`` writes Chrome
        ``trace_event`` JSON instead (load in chrome://tracing or
        Perfetto).
        """
        tracer = obs_tracer()
        if chrome:
            return tracer.dump_chrome(path)
        return tracer.dump_json(path)

    def clear_trace(self) -> None:
        """Drop recorded spans (e.g. between runs being dumped separately)."""
        obs_tracer().clear()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("this LearningSession is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release every owned resource; idempotent.

        Closes backends this session created (worker fleets, snapshot
        pools) and the server connection (server-side state deliberately
        stays warm).  Instances that were passed in already prepared are
        never touched.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._instances.clear()
            self._bundles.clear()
            self._stores.clear()
        # Runs _SessionResources.close exactly once; the same callback
        # fires on garbage collection / interpreter exit for sessions that
        # were never closed explicitly.
        self._finalizer()

    def __enter__(self) -> "LearningSession":
        self._ensure_open()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        target = (
            f"server={self.config.service_address!r}"
            if self.config.service_address
            else f"backend={self.config.backend!r}"
        )
        return f"LearningSession({target}, {len(self._instances)} instances, {state})"


def connect(
    address: str, config: Optional[SessionConfig] = None, **overrides: object
) -> LearningSession:
    """Module-level shorthand for :meth:`LearningSession.connect`."""
    return LearningSession.connect(address, config=config, **overrides)
