"""Schema transformations τ: composition/decomposition pipelines.

A :class:`SchemaTransformation` bundles a source schema, a sequence of
decompose/compose operations, the resulting target schema, and the three maps
the paper reasons about:

* ``apply(I)``     — the instance transformation τ : I(R) → I(S);
* ``invert()``     — the inverse transformation τ⁻¹ (compose ↔ decompose);
* ``map_definition(h)`` — the definition mapping δτ (Proposition 3.7), which
  rewrites a Horn definition over the source schema into an equivalent one
  over the target schema by substituting each literal of a transformed
  relation.

Because both τ and τ⁻¹ are Horn transformations, δτ is obtained literal by
literal: a literal of a composed relation expands into literals of its parts,
and a literal of a decomposed part expands into a literal of the composed
relation with fresh variables in the unconstrained positions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..database.instance import DatabaseInstance
from ..database.schema import Schema
from ..logic.atoms import Atom
from ..logic.clauses import HornClause, HornDefinition
from ..logic.terms import Term, Variable
from .decomposition import (
    ComposeOperation,
    DecomposeOperation,
    apply_compose_to_schema,
    apply_decompose_to_schema,
    compose_rows,
    decompose_rows,
)

Operation = Union[DecomposeOperation, ComposeOperation]


class SchemaTransformation:
    """A finite sequence of decompose/compose operations applied to a schema."""

    def __init__(
        self,
        source_schema: Schema,
        operations: Sequence[Operation],
        target_name: Optional[str] = None,
    ):
        self.source_schema = source_schema
        self.operations: List[Operation] = list(operations)
        schema = source_schema
        self._intermediate_schemas: List[Schema] = [schema]
        for operation in self.operations:
            if isinstance(operation, DecomposeOperation):
                schema = apply_decompose_to_schema(schema, operation)
            elif isinstance(operation, ComposeOperation):
                schema = apply_compose_to_schema(schema, operation)
            else:
                raise TypeError(f"unsupported operation {operation!r}")
            self._intermediate_schemas.append(schema)
        if target_name:
            schema = schema.with_constraints(name=target_name)
        self.target_schema = schema

    # ------------------------------------------------------------------ #
    # Instance transformation τ
    # ------------------------------------------------------------------ #
    def apply(self, instance: DatabaseInstance) -> DatabaseInstance:
        """Transform a source-schema instance into the target-schema instance."""
        if instance.schema.relation_names != self.source_schema.relation_names:
            # A softer check than full equality: the relations must line up.
            missing = set(self.source_schema.relation_names) - set(
                instance.schema.relation_names
            )
            if missing:
                raise ValueError(
                    f"instance is missing relations {sorted(missing)} of the source schema"
                )
        current = instance
        for step, operation in enumerate(self.operations):
            schema_after = self._intermediate_schemas[step + 1]
            current = self._apply_single(current, schema_after, operation)
        final = DatabaseInstance(self.target_schema)
        for relation in current.relations():
            if self.target_schema.has_relation(relation.schema.name):
                final.add_tuples(relation.schema.name, relation.rows)
        return final

    @staticmethod
    def _apply_single(
        instance: DatabaseInstance, schema_after: Schema, operation: Operation
    ) -> DatabaseInstance:
        result = DatabaseInstance(schema_after)
        if isinstance(operation, DecomposeOperation):
            decomposed = decompose_rows(instance, operation)
            touched = set(decomposed)
            for name, rows in decomposed.items():
                result.add_tuples(name, rows)
            for relation in instance.relations():
                if relation.schema.name != operation.relation and relation.schema.name not in touched:
                    result.add_tuples(relation.schema.name, relation.rows)
        else:
            composed = compose_rows(instance, operation)
            result.add_tuples(operation.new_name, composed)
            members = set(operation.relations)
            for relation in instance.relations():
                if relation.schema.name not in members:
                    result.add_tuples(relation.schema.name, relation.rows)
        return result

    # ------------------------------------------------------------------ #
    # Inverse transformation τ⁻¹
    # ------------------------------------------------------------------ #
    def invert(self) -> "SchemaTransformation":
        """The inverse transformation from the target schema back to the source.

        Each compose becomes a decompose of the composed relation into the
        original members and vice versa; the operation order is reversed.
        """
        inverse_operations: List[Operation] = []
        for step in range(len(self.operations) - 1, -1, -1):
            operation = self.operations[step]
            schema_before = self._intermediate_schemas[step]
            if isinstance(operation, DecomposeOperation):
                source_relation = schema_before.relation(operation.relation)
                inverse_operations.append(
                    ComposeOperation(
                        operation.part_names(),
                        operation.relation,
                        attribute_order=source_relation.attributes,
                    )
                )
            else:
                # The member relations' attribute lists live in the schema
                # *before* the composition was applied.
                inverse_operations.append(operation.inverse(schema_before))
        return SchemaTransformation(
            self.target_schema, inverse_operations, target_name=self.source_schema.name
        )

    def is_invertible_on(self, instance: DatabaseInstance) -> bool:
        """Check τ⁻¹(τ(I)) = I for the given instance (bijectivity witness)."""
        transformed = self.apply(instance)
        recovered = self.invert().apply(transformed)
        return recovered.same_contents(instance)

    # ------------------------------------------------------------------ #
    # Definition mapping δτ
    # ------------------------------------------------------------------ #
    def map_definition(self, definition: HornDefinition) -> HornDefinition:
        """Rewrite a definition over the source schema into one over the target schema."""
        mapped_clauses = [self.map_clause(clause) for clause in definition]
        return HornDefinition(definition.target, mapped_clauses)

    def map_clause(self, clause: HornClause) -> HornClause:
        """Rewrite a single clause literal by literal through every operation."""
        body = list(clause.body)
        fresh_counter = [0]
        for step, operation in enumerate(self.operations):
            schema_before = self._intermediate_schemas[step]
            schema_after = self._intermediate_schemas[step + 1]
            new_body: List[Atom] = []
            for atom in body:
                new_body.extend(
                    self._map_atom(atom, operation, schema_before, schema_after, fresh_counter)
                )
            body = new_body
        deduplicated: List[Atom] = []
        seen = set()
        for atom in body:
            if atom not in seen:
                seen.add(atom)
                deduplicated.append(atom)
        return HornClause(clause.head, deduplicated)

    @staticmethod
    def _map_atom(
        atom: Atom,
        operation: Operation,
        schema_before: Schema,
        schema_after: Schema,
        fresh_counter: List[int],
    ) -> List[Atom]:
        if isinstance(operation, DecomposeOperation):
            if atom.predicate != operation.relation:
                return [atom]
            source_relation = schema_before.relation(operation.relation)
            term_of: Dict[str, Term] = dict(zip(source_relation.attributes, atom.terms))
            mapped = []
            for name, attrs in operation.parts:
                mapped.append(Atom(name, [term_of[a] for a in attrs]))
            return mapped

        members = set(operation.relations)
        if atom.predicate not in members:
            return [atom]
        member_relation = schema_before.relation(atom.predicate)
        term_of = dict(zip(member_relation.attributes, atom.terms))
        composed_attrs = schema_after.relation(operation.new_name).attributes
        terms: List[Term] = []
        for attribute in composed_attrs:
            existing = term_of.get(attribute)
            if existing is None:
                fresh_counter[0] += 1
                existing = Variable(f"f{fresh_counter[0]}")
            terms.append(existing)
        return [Atom(operation.new_name, terms)]

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return (
            f"SchemaTransformation({self.source_schema.name!r} -> "
            f"{self.target_schema.name!r}, {len(self.operations)} operations)"
        )


def identity_transformation(schema: Schema) -> SchemaTransformation:
    """A transformation with no operations (τ is the identity)."""
    return SchemaTransformation(schema, [], target_name=schema.name)
