"""Equivalence checks used to *measure* schema (in)dependence empirically.

Two Horn definitions over schemas R and S (related by τ) are equivalent when
they return the same result relation over every pair of corresponding
instances (Definition 3.5).  Checking this for all instances is undecidable
in general, so the experiment harness uses the standard surrogate: evaluate
both definitions on the actual dataset instance and its transform and compare
the result sets.  The module also provides a same-schema semantic equivalence
check and a syntactic variant check.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from ..database.instance import DatabaseInstance
from ..database.query import QueryEvaluator
from ..logic.clauses import HornClause, HornDefinition
from ..logic.subsumption import SubsumptionEngine
from .transformation import SchemaTransformation


def definition_results(
    definition: HornDefinition, instance: DatabaseInstance
) -> Set[Tuple[object, ...]]:
    """Result relation of a definition on an instance (unsafe clauses skipped).

    Learned definitions are normally safe; any unsafe clause contributes
    nothing here rather than raising, because the comparison is between what
    the definitions *return* on finite data.
    """
    evaluator = QueryEvaluator(instance)
    results: Set[Tuple[object, ...]] = set()
    for clause in definition:
        if clause.is_safe():
            results |= evaluator.evaluate_clause(clause)
    return results


def definitions_equivalent_on(
    first: HornDefinition,
    second: HornDefinition,
    instance: DatabaseInstance,
    second_instance: Optional[DatabaseInstance] = None,
) -> bool:
    """True when both definitions return the same result set.

    When ``second_instance`` is given, ``second`` is evaluated on it (the
    cross-schema case); otherwise both run on ``instance``.
    """
    results_first = definition_results(first, instance)
    results_second = definition_results(second, second_instance or instance)
    return results_first == results_second


def definitions_equivalent_across(
    definition_source: HornDefinition,
    definition_target: HornDefinition,
    source_instance: DatabaseInstance,
    transformation: SchemaTransformation,
) -> bool:
    """Check Definition 3.10's output condition on an actual instance pair.

    ``definition_source`` was learned over the source schema; it is evaluated
    on ``source_instance``.  ``definition_target`` was learned over the target
    schema; it is evaluated on ``τ(source_instance)``.  The learner is schema
    independent on this instance when the result sets agree.
    """
    target_instance = transformation.apply(source_instance)
    return definitions_equivalent_on(
        definition_source, definition_target, source_instance, target_instance
    )


def clauses_are_variants(first: HornClause, second: HornClause) -> bool:
    """Syntactic equivalence up to variable renaming and literal order."""
    engine = SubsumptionEngine()
    return engine.equivalent(first, second)


def definitions_are_variants(first: HornDefinition, second: HornDefinition) -> bool:
    """Every clause of one definition has an equivalent clause in the other."""
    engine = SubsumptionEngine()

    def covered(clauses_a: Iterable[HornClause], clauses_b: Iterable[HornClause]) -> bool:
        clauses_b = list(clauses_b)
        return all(
            any(engine.equivalent(a, b) for b in clauses_b) for a in clauses_a
        )

    return covered(first.clauses, second.clauses) and covered(
        second.clauses, first.clauses
    )


def schema_independence_witness(
    definition_source: HornDefinition,
    definition_target: HornDefinition,
    source_instance: DatabaseInstance,
    transformation: SchemaTransformation,
) -> dict:
    """Produce a small report comparing outputs across a transformation.

    Returns a dict with the two result sets' sizes, the symmetric-difference
    size, and an ``equivalent`` flag — the experiment harness logs this to
    quantify *how* schema dependent a learner's outputs are, not just whether.
    """
    target_instance = transformation.apply(source_instance)
    results_source = definition_results(definition_source, source_instance)
    results_target = definition_results(definition_target, target_instance)
    difference = results_source ^ results_target
    return {
        "source_result_size": len(results_source),
        "target_result_size": len(results_target),
        "symmetric_difference": len(difference),
        "equivalent": not difference,
    }
