"""Schema transformations: (de)composition, instance maps τ, definition maps δτ."""

from .decomposition import (
    ComposeOperation,
    DecomposeOperation,
    apply_compose_to_schema,
    apply_decompose_to_schema,
    compose_rows,
    decompose_rows,
)
from .equivalence import (
    clauses_are_variants,
    definition_results,
    definitions_are_variants,
    definitions_equivalent_across,
    definitions_equivalent_on,
    schema_independence_witness,
)
from .transformation import SchemaTransformation, identity_transformation

__all__ = [
    "ComposeOperation",
    "DecomposeOperation",
    "SchemaTransformation",
    "apply_compose_to_schema",
    "apply_decompose_to_schema",
    "clauses_are_variants",
    "compose_rows",
    "decompose_rows",
    "definition_results",
    "definitions_are_variants",
    "definitions_equivalent_across",
    "definitions_equivalent_on",
    "identity_transformation",
    "schema_independence_witness",
]
