"""Vertical decomposition and composition of schemas (Section 4).

A *decomposition* replaces one relation ``R`` with relations ``S1..Sn`` whose
attribute sets cover ``sort(R)``; the transformed schema gains INDs with
equality between the parts over their shared attributes (Definition 4.1) and
the instance transformation is projection.  A *composition* is the inverse:
the listed relations are replaced by their natural join.

Both operations are represented as small declarative objects so that a
:class:`repro.transform.transformation.SchemaTransformation` can apply them
to schemas, to database instances (τ and τ⁻¹), and to Horn definitions (δτ).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..database.algebra import named_rows, natural_join_many
from ..database.constraints import FunctionalDependency, InclusionDependency
from ..database.instance import DatabaseInstance
from ..database.schema import RelationSchema, Schema


class DecomposeOperation:
    """Decompose one relation into several projections.

    Parameters
    ----------
    relation:
        Name of the relation (in the source schema) being decomposed.
    parts:
        Sequence of ``(new_relation_name, attribute_list)`` pairs.  The union
        of the attribute lists must equal the source relation's attributes,
        and consecutive parts must be connectable through shared attributes
        (otherwise the join back would be a Cartesian product, which
        Definition 4.1 excludes).
    """

    def __init__(self, relation: str, parts: Sequence[Tuple[str, Sequence[str]]]):
        self.relation = str(relation)
        self.parts: List[Tuple[str, Tuple[str, ...]]] = [
            (str(name), tuple(attrs)) for name, attrs in parts
        ]
        if len(self.parts) < 2:
            raise ValueError("a decomposition needs at least two parts")

    def part_names(self) -> List[str]:
        return [name for name, _ in self.parts]

    def validate_against(self, schema: Schema) -> None:
        """Check the operation is well formed for ``schema``; raise ValueError otherwise."""
        source = schema.relation(self.relation)
        covered: Set[str] = set()
        for _name, attrs in self.parts:
            for attribute in attrs:
                source.position_of(attribute)
            covered |= set(attrs)
        if covered != set(source.attributes):
            missing = set(source.attributes) - covered
            raise ValueError(
                f"decomposition of {self.relation!r} does not cover attributes {sorted(missing)}"
            )
        if not self._parts_connected():
            raise ValueError(
                f"decomposition of {self.relation!r} has disconnected parts "
                "(the re-join would be a Cartesian product)"
            )

    def _parts_connected(self) -> bool:
        """True when the parts form a connected graph via shared attributes."""
        if len(self.parts) == 1:
            return True
        remaining = list(range(1, len(self.parts)))
        connected_attrs = set(self.parts[0][1])
        connected = {0}
        progressed = True
        while remaining and progressed:
            progressed = False
            for index in list(remaining):
                attrs = set(self.parts[index][1])
                if attrs & connected_attrs:
                    connected.add(index)
                    connected_attrs |= attrs
                    remaining.remove(index)
                    progressed = True
        return not remaining

    def generated_inds(self) -> List[InclusionDependency]:
        """INDs with equality between every pair of parts sharing attributes."""
        inds: List[InclusionDependency] = []
        for (name_a, attrs_a), (name_b, attrs_b) in itertools.combinations(self.parts, 2):
            shared = tuple(a for a in attrs_a if a in set(attrs_b))
            if shared:
                inds.append(
                    InclusionDependency(name_a, shared, name_b, shared, with_equality=True)
                )
        return inds

    def __repr__(self) -> str:
        return f"DecomposeOperation({self.relation!r}, {self.parts!r})"


class ComposeOperation:
    """Compose (natural-join) several relations into one.

    Parameters
    ----------
    relations:
        Names of the relations (in the source schema) to join.  They must be
        pairwise connectable through shared attributes.
    new_name:
        Name of the composed relation in the target schema.
    attribute_order:
        Optional explicit attribute order for the composed relation; defaults
        to the order of first appearance across the listed relations.
    """

    def __init__(
        self,
        relations: Sequence[str],
        new_name: str,
        attribute_order: Optional[Sequence[str]] = None,
    ):
        self.relations: List[str] = [str(r) for r in relations]
        self.new_name = str(new_name)
        self.attribute_order: Optional[Tuple[str, ...]] = (
            tuple(attribute_order) if attribute_order is not None else None
        )
        if len(self.relations) < 2:
            raise ValueError("a composition needs at least two relations")

    def composed_attributes(self, schema: Schema) -> Tuple[str, ...]:
        """Attribute list of the composed relation."""
        if self.attribute_order is not None:
            return self.attribute_order
        seen: List[str] = []
        for name in self.relations:
            for attribute in schema.relation(name).attributes:
                if attribute not in seen:
                    seen.append(attribute)
        return tuple(seen)

    def validate_against(self, schema: Schema) -> None:
        """Check relations exist, are connected, and the attribute order is complete."""
        for name in self.relations:
            schema.relation(name)
        attributes = self.composed_attributes(schema)
        union: Set[str] = set()
        for name in self.relations:
            union |= set(schema.relation(name).attributes)
        if set(attributes) != union:
            raise ValueError(
                f"attribute order for composed relation {self.new_name!r} must cover "
                "exactly the union of member attributes"
            )
        if not self._members_connected(schema):
            raise ValueError(
                f"composition {self.new_name!r} has disconnected members "
                "(natural join would be a Cartesian product)"
            )

    def _members_connected(self, schema: Schema) -> bool:
        member_attrs = [set(schema.relation(name).attributes) for name in self.relations]
        connected = {0}
        connected_attrs = set(member_attrs[0])
        remaining = list(range(1, len(member_attrs)))
        progressed = True
        while remaining and progressed:
            progressed = False
            for index in list(remaining):
                if member_attrs[index] & connected_attrs:
                    connected.add(index)
                    connected_attrs |= member_attrs[index]
                    remaining.remove(index)
                    progressed = True
        return not remaining

    def inverse(self, schema: Schema) -> DecomposeOperation:
        """The decomposition that undoes this composition (on the target schema)."""
        parts = [
            (name, tuple(schema.relation(name).attributes)) for name in self.relations
        ]
        return DecomposeOperation(self.new_name, parts)

    def __repr__(self) -> str:
        return f"ComposeOperation({self.relations!r} -> {self.new_name!r})"


def apply_decompose_to_schema(schema: Schema, operation: DecomposeOperation) -> Schema:
    """Build the schema resulting from applying a decomposition operation."""
    operation.validate_against(schema)
    new_relations: List[RelationSchema] = []
    for relation in schema.relations:
        if relation.name == operation.relation:
            for name, attrs in operation.parts:
                new_relations.append(RelationSchema(name, attrs))
        else:
            new_relations.append(relation)

    new_fds: List[FunctionalDependency] = []
    for fd in schema.functional_dependencies:
        if fd.relation != operation.relation:
            new_fds.append(fd)
            continue
        # The FD survives on every part that contains its left-hand side,
        # restricted to the right-hand-side attributes the part carries.
        for name, attrs in operation.parts:
            attr_set = set(attrs)
            surviving_rhs = tuple(a for a in fd.rhs if a in attr_set)
            if set(fd.lhs) <= attr_set and surviving_rhs:
                new_fds.append(FunctionalDependency(name, fd.lhs, surviving_rhs))

    new_inds: List[InclusionDependency] = []
    for ind in schema.inclusion_dependencies:
        new_inds.extend(_rewrite_ind_for_decomposition(ind, operation))
    new_inds.extend(operation.generated_inds())

    return Schema(new_relations, new_fds, new_inds, name=f"{schema.name}-decomposed")


def _rewrite_ind_for_decomposition(
    ind: InclusionDependency, operation: DecomposeOperation
) -> List[InclusionDependency]:
    """Rewrite an existing IND when one of its sides is being decomposed.

    The IND survives on any part that contains all the referenced attributes;
    when neither side is affected it is kept verbatim, and when a side's
    attributes end up split across parts the IND is dropped (it can no longer
    be stated as a single IND).
    """
    def sides_for(relation: str, attrs: Tuple[str, ...]) -> List[Tuple[str, Tuple[str, ...]]]:
        if relation != operation.relation:
            return [(relation, attrs)]
        matches = []
        for name, part_attrs in operation.parts:
            if set(attrs) <= set(part_attrs):
                matches.append((name, attrs))
        return matches

    rewritten: List[InclusionDependency] = []
    for left, left_attrs in sides_for(ind.left, ind.left_attrs):
        for right, right_attrs in sides_for(ind.right, ind.right_attrs):
            rewritten.append(
                InclusionDependency(left, left_attrs, right, right_attrs, ind.with_equality)
            )
    return rewritten


def apply_compose_to_schema(schema: Schema, operation: ComposeOperation) -> Schema:
    """Build the schema resulting from applying a composition operation."""
    operation.validate_against(schema)
    composed_attrs = operation.composed_attributes(schema)
    members = set(operation.relations)

    new_relations: List[RelationSchema] = []
    inserted = False
    for relation in schema.relations:
        if relation.name in members:
            if not inserted:
                new_relations.append(RelationSchema(operation.new_name, composed_attrs))
                inserted = True
        else:
            new_relations.append(relation)

    new_fds: List[FunctionalDependency] = []
    for fd in schema.functional_dependencies:
        if fd.relation in members:
            new_fds.append(FunctionalDependency(operation.new_name, fd.lhs, fd.rhs))
        else:
            new_fds.append(fd)

    new_inds: List[InclusionDependency] = []
    for ind in schema.inclusion_dependencies:
        left_member = ind.left in members
        right_member = ind.right in members
        if left_member and right_member:
            # IND between two members becomes trivial inside the composed relation.
            continue
        left = operation.new_name if left_member else ind.left
        right = operation.new_name if right_member else ind.right
        new_inds.append(
            InclusionDependency(left, ind.left_attrs, right, ind.right_attrs, ind.with_equality)
        )
    deduplicated = list(dict.fromkeys(new_inds))
    return Schema(new_relations, new_fds, deduplicated, name=f"{schema.name}-composed")


def decompose_rows(
    source: DatabaseInstance, operation: DecomposeOperation
) -> Dict[str, Set[Tuple[object, ...]]]:
    """Project the source relation's tuples onto each part (τ for decomposition)."""
    relation = source.relation(operation.relation)
    result: Dict[str, Set[Tuple[object, ...]]] = {}
    for name, attrs in operation.parts:
        positions = relation.schema.positions_of(attrs)
        result[name] = {tuple(row[p] for p in positions) for row in relation.rows}
    return result


def compose_rows(
    source: DatabaseInstance, operation: ComposeOperation
) -> Set[Tuple[object, ...]]:
    """Natural-join the member relations' tuples (τ for composition)."""
    member_instances = [source.relation(name) for name in operation.relations]
    joined = natural_join_many([named_rows(instance) for instance in member_instances])
    attributes = operation.composed_attributes(source.schema)
    return {tuple(row[a] for a in attributes) for row in joined}
