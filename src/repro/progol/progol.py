"""Progol/Aleph-style top-down learner bounded by a bottom clause.

Aleph (the system the paper uses to emulate both Progol and FOIL) learns one
clause at a time by:

1. picking a *seed* positive example and building its (variablized) bottom
   clause, which bounds the hypothesis space from below;
2. searching the space of clauses whose body literals are drawn from the
   bottom clause, from general to specific, keeping an *open list* of the
   best candidates (``openlist=1`` yields the greedy Aleph-FOIL emulation,
   larger open lists yield the default Aleph-Progol behaviour);
3. returning the best clause found subject to the ``clauselength``,
   ``minacc`` (minimum precision) and ``minpos`` constraints.

The ``clauselength`` parameter is exactly the bound that Theorem 5.1 shows
cannot be fixed consistently across composed/decomposed schemas, so this
learner is schema dependent by construction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..database.instance import DatabaseInstance
from ..database.schema import Schema
from ..foil.gain import coverage_score, foil_gain, precision
from ..learning.knobs import EvaluationKnobs, ThreadsAsParallelism
from ..learning.bottom_clause import BottomClauseBuilder, BottomClauseConfig
from ..learning.coverage import SubsumptionCoverageEngine
from ..learning.covering import CoveringLearner, CoveringParameters
from ..learning.examples import Example, ExampleSet
from ..logic.atoms import Atom
from ..logic.clauses import HornClause, HornDefinition


class ProgolParameters:
    """Aleph-style settings.

    ``clause_length`` mirrors Aleph's ``clauselength`` (the experiments use 4,
    10, and 15); ``open_list_size`` mirrors ``openlist`` (1 = Aleph-FOIL
    greedy emulation); ``scoring`` selects between Aleph's default
    compression score and FOIL gain.
    """

    def __init__(
        self,
        clause_length: int = 4,
        open_list_size: int = 5,
        min_precision: float = 0.67,
        min_positives: int = 2,
        max_clauses: int = 40,
        scoring: str = "compression",
        bottom_clause: Optional[BottomClauseConfig] = None,
        max_search_nodes: int = 2000,
    ):
        if scoring not in ("compression", "gain"):
            raise ValueError("scoring must be 'compression' or 'gain'")
        self.clause_length = int(clause_length)
        self.open_list_size = int(open_list_size)
        self.min_precision = float(min_precision)
        self.min_positives = int(min_positives)
        self.max_clauses = int(max_clauses)
        self.scoring = scoring
        self.bottom_clause = bottom_clause or BottomClauseConfig(max_depth=2)
        self.max_search_nodes = int(max_search_nodes)


class _ProgolClauseLearner:
    """LearnClause: bottom-clause-bounded beam search from general to specific."""

    def __init__(
        self,
        schema: Schema,
        parameters: ProgolParameters,
        coverage: SubsumptionCoverageEngine,
    ):
        self.schema = schema
        self.parameters = parameters
        self.coverage = coverage

    # ------------------------------------------------------------------ #
    def learn_clause(
        self,
        instance: DatabaseInstance,
        uncovered_positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> Optional[HornClause]:
        if not uncovered_positives:
            return None
        seed = uncovered_positives[0]
        builder = BottomClauseBuilder(instance, self.parameters.bottom_clause)
        bottom = builder.build(seed)
        if not bottom.body:
            return None

        head = bottom.head
        empty = HornClause(head, [])
        best: Optional[Tuple[float, HornClause, int, int]] = None
        beam: List[Tuple[float, HornClause]] = [(0.0, empty)]
        nodes_expanded = 0

        base_pos = len(uncovered_positives)
        base_neg = len(negatives)

        while beam and nodes_expanded < self.parameters.max_search_nodes:
            next_beam: List[Tuple[float, HornClause]] = []
            for _, clause in beam:
                if clause.length >= self.parameters.clause_length:
                    continue
                for literal in self._admissible_literals(clause, bottom):
                    candidate = clause.add_literal(literal)
                    nodes_expanded += 1
                    if nodes_expanded > self.parameters.max_search_nodes:
                        break
                    pos_cov = self.coverage.covered_examples(
                        candidate, list(uncovered_positives)
                    )
                    if len(pos_cov) < self.parameters.min_positives:
                        continue
                    neg_cov = self.coverage.covered_examples(candidate, list(negatives))
                    score = self._score(
                        base_pos, base_neg, len(pos_cov), len(neg_cov), candidate.length
                    )
                    next_beam.append((score, candidate))
                    if candidate.is_safe() and precision(
                        len(pos_cov), len(neg_cov)
                    ) >= self.parameters.min_precision:
                        if best is None or score > best[0]:
                            best = (score, candidate, len(pos_cov), len(neg_cov))
            next_beam.sort(key=lambda pair: pair[0], reverse=True)
            beam = next_beam[: self.parameters.open_list_size]

        if best is None:
            return None
        return best[1]

    # ------------------------------------------------------------------ #
    def _admissible_literals(self, clause: HornClause, bottom: HornClause) -> List[Atom]:
        """Bottom-clause literals not yet in the clause that keep it head-connected."""
        current_vars = set(clause.variables())
        existing = set(clause.body)
        admissible = []
        for literal in bottom.body:
            if literal in existing:
                continue
            literal_vars = set(literal.variables())
            if not literal_vars or literal_vars & current_vars:
                admissible.append(literal)
        return admissible

    def _score(
        self,
        base_pos: int,
        base_neg: int,
        covered_pos: int,
        covered_neg: int,
        length: int,
    ) -> float:
        if self.parameters.scoring == "gain":
            return foil_gain(base_pos, base_neg, covered_pos, covered_neg)
        return coverage_score(covered_pos, covered_neg, length)


class ProgolLearner(EvaluationKnobs, ThreadsAsParallelism):
    """Aleph-Progol style learner (default settings) with a configurable beam."""

    name = "Aleph-Progol"

    def __init__(
        self,
        schema: Schema,
        parameters: Optional[ProgolParameters] = None,
        threads: int = 1,
        parallelism: Optional[int] = None,
        backend: Optional[str] = None,
        shards: Optional[int] = None,
        saturation_store=None,
        context=None,
    ):
        self.schema = schema
        self.parameters = parameters or ProgolParameters()
        self.threads = max(1, int(threads))
        self._init_evaluation_knobs(
            backend=backend, shards=shards, saturation_store=saturation_store
        )
        if parallelism is not None:
            self.threads = max(1, int(parallelism))
        self._apply_context(context)

    def learn(self, instance: DatabaseInstance, examples: ExampleSet) -> HornDefinition:
        """Learn a Horn definition via bottom-clause-bounded top-down search."""
        instance = self._prepare_instance(instance)
        coverage = SubsumptionCoverageEngine(
            instance,
            self.parameters.bottom_clause,
            threads=self.threads,
            compiled=self.compiled_coverage,
            saturation_store=self.saturation_store,
        )
        clause_learner = _ProgolClauseLearner(self.schema, self.parameters, coverage)
        covering = CoveringLearner(
            clause_learner,
            coverage_fn=coverage.covered_examples,
            precision_fn=lambda clause, pos, neg: precision(
                len(coverage.covered_examples(clause, pos)),
                len(coverage.covered_examples(clause, neg)),
            ),
            parameters=CoveringParameters(
                min_precision=self.parameters.min_precision,
                min_positives=self.parameters.min_positives,
                max_clauses=self.parameters.max_clauses,
            ),
        )
        return covering.learn(instance, examples)


class AlephFoilLearner(ProgolLearner):
    """Aleph forced into a greedy FOIL-like strategy (``openlist=1``, gain scoring)."""

    name = "Aleph-FOIL"

    def __init__(
        self,
        schema: Schema,
        clause_length: int = 10,
        parameters: Optional[ProgolParameters] = None,
        threads: int = 1,
        **kwargs,
    ):
        if parameters is None:
            parameters = ProgolParameters(
                clause_length=clause_length, open_list_size=1, scoring="gain"
            )
        super().__init__(schema, parameters, threads=threads, **kwargs)
