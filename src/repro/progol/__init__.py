"""Progol/Aleph-style top-down learners (baselines, schema dependent)."""

from .progol import AlephFoilLearner, ProgolLearner, ProgolParameters

__all__ = ["AlephFoilLearner", "ProgolLearner", "ProgolParameters"]
