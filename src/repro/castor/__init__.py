"""Castor: the schema-independent relational learner (the paper's contribution)."""

from .armg import IndConsistencyEnforcer, castor_armg
from .bottom_clause import CastorBottomClauseBuilder, CastorBottomClauseConfig
from .castor import (
    CastorClauseLearner,
    CastorCoverageEngine,
    CastorLearner,
    CastorParameters,
)
from .inclusion_instances import (
    InclusionInstance,
    compute_inclusion_instances,
    head_connecting_instances,
    literals_satisfy_ind,
)
from .reduction import NegativeReducer
from .stored_procedures import StoredProcedureRunner, compare_stored_procedure_modes

__all__ = [
    "CastorBottomClauseBuilder",
    "CastorBottomClauseConfig",
    "CastorClauseLearner",
    "CastorCoverageEngine",
    "CastorLearner",
    "CastorParameters",
    "InclusionInstance",
    "IndConsistencyEnforcer",
    "NegativeReducer",
    "StoredProcedureRunner",
    "castor_armg",
    "compare_stored_procedure_modes",
    "compute_inclusion_instances",
    "head_connecting_instances",
    "literals_satisfy_ind",
]
