"""Castor's IND-aware ARMG (Section 7.2.1).

Castor runs the standard ARMG loop (drop blocking atoms, drop
head-disconnected literals) but, immediately after each blocking-atom
removal, it restores IND consistency of the clause's canonical database
instance: any remaining literal ``R1(u1)`` that participates in an IND with
equality ``R1[X] = R2[X]`` must be witnessed by some literal ``R2(u2)`` with
``π_X(u1) = π_X(u2)``; literals with no witness are removed, cascading until
a fixpoint.  This is what makes the generalizations over a composed schema
and its decomposition equivalent (Lemma 7.7): dropping one part of a
decomposed tuple drags the sibling parts with it, exactly as dropping the
single composed literal would.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..database.constraints import InclusionDependency
from ..database.schema import Schema
from ..learning.coverage import SubsumptionCoverageEngine
from ..learning.examples import Example
from ..logic.atoms import Atom
from ..logic.clauses import HornClause
from ..progolem.armg import armg
from .inclusion_instances import _terms_at


class IndConsistencyEnforcer:
    """Remove clause literals whose IND witnesses have disappeared."""

    def __init__(self, schema: Schema, include_subset_inds: bool = False):
        self.schema = schema
        self.include_subset_inds = include_subset_inds
        self._inds_by_relation = {}
        relevant = schema.inclusion_dependencies if include_subset_inds else schema.equality_inds()
        for ind in relevant:
            self._inds_by_relation.setdefault(ind.left, []).append(ind)
            self._inds_by_relation.setdefault(ind.right, []).append(ind)

    def inds_for(self, relation: str) -> List[InclusionDependency]:
        return self._inds_by_relation.get(relation, [])

    # ------------------------------------------------------------------ #
    def enforce(self, clause: HornClause) -> HornClause:
        """Drop literals violating their INDs until a fixpoint is reached."""
        body = list(clause.body)
        changed = True
        while changed:
            changed = False
            surviving: List[Atom] = []
            for literal in body:
                if self._has_all_witnesses(literal, body):
                    surviving.append(literal)
                else:
                    changed = True
            body = surviving
        return HornClause(clause.head, body)

    def _has_all_witnesses(self, literal: Atom, body: Sequence[Atom]) -> bool:
        """True when every IND of the literal's relation is witnessed in ``body``."""
        if not self.schema.has_relation(literal.predicate):
            return True
        for ind in self.inds_for(literal.predicate):
            other_name, own_attrs, other_attrs = ind.other_side(literal.predicate)
            own_terms = _terms_at(self.schema, literal, own_attrs)
            if own_terms is None:
                continue
            witnessed = False
            for candidate in body:
                if candidate is literal or candidate.predicate != other_name:
                    continue
                candidate_terms = _terms_at(self.schema, candidate, other_attrs)
                if candidate_terms is not None and candidate_terms == own_terms:
                    witnessed = True
                    break
            if not witnessed:
                return False
        return True


def castor_armg(
    bottom_clause: HornClause,
    example: Example,
    coverage: SubsumptionCoverageEngine,
    schema: Schema,
    include_subset_inds: bool = False,
    batch=None,
    probe_width: Optional[int] = None,
) -> HornClause:
    """Castor's ARMG: standard ARMG with IND-consistency enforcement after each removal.

    ``batch`` / ``probe_width`` forward to the blocking-atom search's batched
    prefix probes (see :func:`repro.progolem.armg.find_blocking_atom`).
    """
    enforcer = IndConsistencyEnforcer(schema, include_subset_inds)

    def hook(clause: HornClause, _removed: Atom) -> HornClause:
        return enforcer.enforce(clause)

    return armg(
        bottom_clause,
        example,
        coverage,
        post_removal_hook=hook,
        batch=batch,
        probe_width=probe_width,
    )
