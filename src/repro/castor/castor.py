"""Castor: the schema-independent bottom-up relational learner (Section 7).

Castor follows ProGolem's search strategy (covering loop + ARMG beam search)
but integrates inclusion dependencies at every step:

* **bottom-clause construction** chases INDs with equality so that the seed
  clauses over a composed schema and its decompositions are equivalent
  (Lemma 7.5);
* **ARMG** restores IND consistency after each blocking-atom removal
  (Lemma 7.7);
* **negative reduction** removes whole inclusion-class instances instead of
  individual literals (Lemma 7.8) and keeps clauses safe (Section 7.3);
* clauses are **minimized** before and after generalization (Section 7.5.5)
  and coverage tests are cached and optionally parallelized (Section 7.5.3/4).

Modes:

* default — use the schema's INDs with equality (bijective (de)compositions);
* ``promote_inds_from_data=True`` — Section 7.4 preprocessing: subset-form
  INDs that hold as equalities on the current instance are promoted and used
  like INDs with equality, restoring full schema independence for general
  (de)compositions;
* ``use_subset_inds=True`` — Section 7.4 direct extension: chase subset-form
  INDs without the preprocessing check (robust but not provably independent).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..database.constraints import InclusionDependency
from ..database.instance import DatabaseInstance
from ..database.schema import Schema
from ..learning.coverage import SubsumptionCoverageEngine
from ..learning.examples import Example, ExampleSet
from ..logic.clauses import HornClause, HornDefinition
from ..logic.minimize import minimize_clause
from ..progolem.progolem import (
    ProGolemClauseLearner,
    ProGolemLearner,
    ProGolemParameters,
)
from .armg import castor_armg
from .bottom_clause import CastorBottomClauseBuilder, CastorBottomClauseConfig
from .reduction import NegativeReducer


class CastorParameters(ProGolemParameters):
    """Castor's parameters: ProGolem's search knobs plus IND handling options."""

    def __init__(
        self,
        sample_size: int = 5,
        beam_width: int = 3,
        min_precision: float = 0.67,
        min_positives: int = 2,
        max_clauses: int = 25,
        max_armg_rounds: int = 10,
        bottom_clause: Optional[CastorBottomClauseConfig] = None,
        seed: int = 0,
        use_subset_inds: bool = False,
        promote_inds_from_data: bool = False,
        minimize_bottom_clauses: bool = False,
        ensure_safe: bool = True,
        max_seconds: Optional[float] = None,
        parallelism: int = 1,
        prefetch: Optional[bool] = None,
    ):
        super().__init__(
            sample_size=sample_size,
            beam_width=beam_width,
            min_precision=min_precision,
            min_positives=min_positives,
            max_clauses=max_clauses,
            max_armg_rounds=max_armg_rounds,
            bottom_clause=bottom_clause or CastorBottomClauseConfig(),
            seed=seed,
            max_seconds=max_seconds,
            parallelism=parallelism,
            prefetch=prefetch,
        )
        self.use_subset_inds = bool(use_subset_inds)
        self.promote_inds_from_data = bool(promote_inds_from_data)
        self.minimize_bottom_clauses = bool(minimize_bottom_clauses)
        self.ensure_safe = bool(ensure_safe)


class CastorCoverageEngine(SubsumptionCoverageEngine):
    """Coverage engine whose saturations are built with the IND-aware builder."""

    def __init__(
        self,
        instance: DatabaseInstance,
        schema: Schema,
        config: CastorBottomClauseConfig,
        threads: int = 1,
        compiled: Optional[bool] = None,
        saturation_store=None,
    ):
        # Bound before super().__init__, whose _make_builder call reads it.
        self.working_schema = schema
        super().__init__(
            instance,
            config,
            threads=threads,
            compiled=compiled,
            saturation_store=saturation_store,
        )

    def _make_builder(self, instance: DatabaseInstance, saturation_config):
        return CastorBottomClauseBuilder(
            instance, self.working_schema, saturation_config
        )

    def shard_spec(self):
        """Recipe for rebuilding this engine inside a shard worker.

        Carries the working schema (the IND set the builder chases) and the
        builder config, so worker-side saturations — and therefore coverage
        decisions — are identical to the coordinator's.
        """
        if type(self) is not CastorCoverageEngine:
            return None
        return (
            "castor",
            self.working_schema,
            self.builder.config,
            self.compiled_enabled,
        )


class CastorClauseLearner(ProGolemClauseLearner):
    """Castor's LearnClause (Algorithm 4): IND-aware seed, ARMG, and reduction."""

    learner_label = "Castor"

    def __init__(
        self,
        schema: Schema,
        parameters: CastorParameters,
        coverage: SubsumptionCoverageEngine,
        working_schema: Optional[Schema] = None,
    ):
        super().__init__(schema, parameters, coverage)
        # ``working_schema`` carries the (possibly promoted) IND set actually used.
        self.working_schema = working_schema or schema
        self.parameters: CastorParameters = parameters

    # ------------------------------------------------------------------ #
    # Overridden hooks
    # ------------------------------------------------------------------ #
    def build_seed_clause(self, instance: DatabaseInstance, seed: Example) -> HornClause:
        builder = CastorBottomClauseBuilder(
            instance, self.working_schema, self._bottom_config()
        )
        clause = builder.build(seed)
        if self.parameters.minimize_bottom_clauses and clause.body:
            clause = minimize_clause(clause)
        return clause

    def generalize(self, clause: HornClause, example: Example) -> HornClause:
        return castor_armg(
            clause,
            example,
            self.coverage,
            self.working_schema,
            include_subset_inds=self.parameters.use_subset_inds,
            batch=self.batch,
        )

    def reduce(
        self,
        clause: HornClause,
        instance: DatabaseInstance,
        negatives: Sequence[Example],
    ) -> HornClause:
        reducer = NegativeReducer(
            self.working_schema,
            self.coverage,
            include_subset_inds=self.parameters.use_subset_inds,
            ensure_safe=self.parameters.ensure_safe,
            batch=self.batch,
        )
        reduced = reducer.reduce(clause, negatives)
        if reduced.body:
            reduced = minimize_clause(reduced)
        if not reduced.body or (self.parameters.ensure_safe and not reduced.is_safe()):
            return clause
        return reduced

    def _bottom_config(self) -> CastorBottomClauseConfig:
        config = self.parameters.bottom_clause
        if isinstance(config, CastorBottomClauseConfig):
            config.use_subset_inds = self.parameters.use_subset_inds
            return config
        return CastorBottomClauseConfig(use_subset_inds=self.parameters.use_subset_inds)


class CastorLearner(ProGolemLearner):
    """Public Castor learner: schema-independent bottom-up induction."""

    name = "Castor"

    clause_learner_class = CastorClauseLearner

    def __init__(
        self,
        schema: Schema,
        parameters: Optional[CastorParameters] = None,
        threads: int = 1,
        backend: Optional[str] = None,
        parallelism: Optional[int] = None,
        shards: Optional[int] = None,
        saturation_store=None,
        context=None,
    ):
        super().__init__(
            schema,
            parameters or CastorParameters(),
            threads=threads,
            parallelism=parallelism,
            saturation_store=saturation_store,
            backend=backend,
            shards=shards,
            context=context,
        )
        self.parameters: CastorParameters = self.parameters
        self._working_schema: Optional[Schema] = None

    # ------------------------------------------------------------------ #
    def working_schema_for(self, instance: DatabaseInstance) -> Schema:
        """The schema whose INDs Castor actually chases for this instance.

        With ``promote_inds_from_data`` enabled, subset-form INDs that hold
        with equality on the instance are promoted (Section 7.4 preprocessing).
        """
        if not self.parameters.promote_inds_from_data:
            return self.schema
        promoted: List[InclusionDependency] = []
        for ind in self.schema.inclusion_dependencies:
            if ind.with_equality:
                promoted.append(ind)
            elif instance.ind_holds_with_equality(ind):
                promoted.append(
                    InclusionDependency(
                        ind.left, ind.left_attrs, ind.right, ind.right_attrs, True
                    )
                )
            else:
                promoted.append(ind)
        return self.schema.with_constraints(inclusion_dependencies=promoted)

    def make_coverage_engine(self, instance: DatabaseInstance) -> SubsumptionCoverageEngine:
        self._working_schema = self.working_schema_for(instance)
        config = self.parameters.bottom_clause
        if not isinstance(config, CastorBottomClauseConfig):
            config = CastorBottomClauseConfig()
        config.use_subset_inds = self.parameters.use_subset_inds
        return CastorCoverageEngine(
            instance,
            self._working_schema,
            config,
            threads=self.threads,
            compiled=self.compiled_coverage,
            saturation_store=self.saturation_store,
        )

    def make_clause_learner(
        self, instance: DatabaseInstance, coverage: SubsumptionCoverageEngine
    ) -> CastorClauseLearner:
        working_schema = self._working_schema or self.working_schema_for(instance)
        return CastorClauseLearner(
            self.schema, self.parameters, coverage, working_schema=working_schema
        )

    def learn(self, instance: DatabaseInstance, examples: ExampleSet) -> HornDefinition:
        # Backend conversion and shard configuration happen in the base
        # class's learn() — one normalization path for the whole family.
        definition = super().learn(instance, examples)
        if self.parameters.ensure_safe:
            safe_clauses = [clause for clause in definition if clause.is_safe()]
            definition = HornDefinition(definition.target, safe_clauses)
        return definition
