"""Castor's IND-aware bottom-clause construction (Section 7.1).

The standard bottom-clause algorithm adds one literal per database tuple that
mentions a known constant.  Castor additionally *chases inclusion
dependencies*: when a tuple of relation ``Si`` (member of an inclusion class
``N``) is added, Castor follows every IND ``Sj[X] = Si[X]`` of ``N`` and adds
the joining tuples of ``Sj`` as well, recursively until the INDs of the class
are exhausted.  This makes the bottom clauses over a composed schema and its
decomposition equivalent (Lemma 7.5), which is the first ingredient of
Castor's schema independence.

The stopping condition is Castor's variable-budget rule: stop iterating once
the clause has a given number of *distinct variables* (equivalent clauses
over (de)compositions have the same number of distinct variables, unlike
clause depth or length).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..database.constraints import InclusionDependency
from ..database.instance import DatabaseInstance
from ..database.schema import Schema
from ..learning.bottom_clause import BottomClauseConfig, compute_theory_constants
from ..learning.examples import Example
from ..logic.atoms import Atom
from ..logic.clauses import HornClause
from ..logic.terms import Constant, Term, Variable


class CastorBottomClauseConfig(BottomClauseConfig):
    """Bottom-clause limits plus Castor-specific IND options.

    ``max_joining_tuples_per_ind`` is the cap on how many tuples of the other
    side of an IND may be pulled in for a single tuple (the paper uses 10).
    ``use_subset_inds`` enables the Section 7.4 extension where general
    (subset-form) INDs are chased as well.
    """

    def __init__(
        self,
        max_depth: Optional[int] = 3,
        max_distinct_variables: Optional[int] = 15,
        max_literals_per_relation_per_tuple: int = 5,
        max_total_literals: int = 100,
        max_joining_tuples_per_ind: int = 10,
        use_subset_inds: bool = False,
    ):
        super().__init__(
            max_depth=max_depth,
            max_distinct_variables=max_distinct_variables,
            max_literals_per_relation_per_tuple=max_literals_per_relation_per_tuple,
            max_total_literals=max_total_literals,
        )
        self.max_joining_tuples_per_ind = int(max_joining_tuples_per_ind)
        self.use_subset_inds = bool(use_subset_inds)


class CastorBottomClauseBuilder:
    """Construct IND-aware bottom clauses and saturations.

    The builder pre-computes, per relation, the list of INDs to chase (those
    of the relation's inclusion class), so the per-example construction only
    performs indexed lookups.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        schema: Optional[Schema] = None,
        config: Optional[CastorBottomClauseConfig] = None,
    ):
        self.instance = instance
        self.schema = schema or instance.schema
        self.config = config or CastorBottomClauseConfig()
        self.theory_constants = compute_theory_constants(
            instance, getattr(self.config, "theory_constant_threshold", 12), self.schema
        )
        self._inds_by_relation: Dict[str, List[InclusionDependency]] = {}
        self._prepare_inclusion_metadata()

    # ------------------------------------------------------------------ #
    # Metadata preparation (the "stored procedure" compilation step)
    # ------------------------------------------------------------------ #
    def _prepare_inclusion_metadata(self) -> None:
        include_subset = self.config.use_subset_inds
        for inclusion_class in self.schema.inclusion_classes(include_subset):
            if len(inclusion_class) < 2:
                continue
            for relation in inclusion_class.members:
                inds = inclusion_class.inds_for(relation)
                self._inds_by_relation.setdefault(relation, []).extend(inds)

    def inds_for(self, relation: str) -> List[InclusionDependency]:
        """INDs Castor chases when a tuple of ``relation`` enters the clause."""
        return self._inds_by_relation.get(relation, [])

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def build(self, example: Example) -> HornClause:
        """Variablized IND-aware bottom clause for ``example``."""
        return self._construct(example, variablize=True)

    def build_ground(self, example: Example) -> HornClause:
        """Ground IND-aware bottom clause (saturation) for ``example``."""
        return self._construct(example, variablize=False)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _construct(self, example: Example, variablize: bool) -> HornClause:
        variable_of: Dict[object, Variable] = {}
        example_values = set(example.values)

        def term_for(value: object) -> Term:
            # Example values are always variablized so the clause generalizes
            # over the target's arguments; other theory constants stay ground.
            if not variablize or (
                value in self.theory_constants and value not in example_values
            ):
                return Constant(value)
            existing = variable_of.get(value)
            if existing is None:
                existing = Variable(f"v{len(variable_of)}")
                variable_of[value] = existing
            return existing

        head = Atom(example.target, [term_for(v) for v in example.values])
        body: List[Atom] = []
        seen_rows: Set[Tuple[str, Tuple[object, ...]]] = set()
        known_constants: Set[object] = set(example.values)
        frontier: Set[object] = set(example.values)
        depth = 0

        while frontier:
            if self.config.max_depth is not None and depth >= self.config.max_depth:
                break
            if self._variable_budget_reached(variable_of, known_constants, variablize):
                break
            next_frontier: Set[object] = set()
            for constant in sorted(frontier, key=str):
                per_relation_counts: Dict[str, int] = {}
                for relation_name, row in sorted(
                    self.instance.tuples_containing(constant),
                    key=lambda pair: (pair[0], tuple(map(str, pair[1]))),
                ):
                    if len(body) >= self.config.max_total_literals:
                        break
                    if (relation_name, row) in seen_rows:
                        continue
                    count = per_relation_counts.get(relation_name, 0)
                    if count >= self.config.max_literals_per_relation_per_tuple:
                        continue
                    per_relation_counts[relation_name] = count + 1
                    self._add_tuple_with_ind_chase(
                        relation_name,
                        row,
                        body,
                        seen_rows,
                        known_constants,
                        next_frontier,
                        term_for,
                    )
                if len(body) >= self.config.max_total_literals:
                    break
            frontier = next_frontier
            depth += 1

        return HornClause(head, body)

    def _add_tuple_with_ind_chase(
        self,
        relation_name: str,
        row: Tuple[object, ...],
        body: List[Atom],
        seen_rows: Set[Tuple[str, Tuple[object, ...]]],
        known_constants: Set[object],
        next_frontier: Set[object],
        term_for,
    ) -> None:
        """Add one tuple's literal and chase the INDs of its inclusion class."""
        pending: List[Tuple[str, Tuple[object, ...]]] = [(relation_name, row)]
        while pending:
            current_relation, current_row = pending.pop(0)
            key = (current_relation, current_row)
            if key in seen_rows:
                continue
            if len(body) >= self.config.max_total_literals:
                return
            seen_rows.add(key)
            body.append(Atom(current_relation, [term_for(v) for v in current_row]))
            for value in current_row:
                if value not in known_constants:
                    known_constants.add(value)
                    next_frontier.add(value)
            pending.extend(
                self._joining_tuples(current_relation, current_row, seen_rows)
            )

    def _joining_tuples(
        self,
        relation_name: str,
        row: Tuple[object, ...],
        seen_rows: Set[Tuple[str, Tuple[object, ...]]],
    ) -> List[Tuple[str, Tuple[object, ...]]]:
        """Tuples of sibling relations that join with ``row`` through the class INDs."""
        joining: List[Tuple[str, Tuple[object, ...]]] = []
        relation_schema = self.schema.relation(relation_name)
        for ind in self.inds_for(relation_name):
            other_name, own_attrs, other_attrs = ind.other_side(relation_name)
            own_positions = relation_schema.positions_of(own_attrs)
            other_schema = self.schema.relation(other_name)
            other_positions = other_schema.positions_of(other_attrs)
            bindings = {
                other_positions[i]: row[own_positions[i]] for i in range(len(own_positions))
            }
            other_instance = self.instance.relation(other_name)
            matches = sorted(
                other_instance.tuples_matching(bindings), key=lambda r: tuple(map(str, r))
            )
            added = 0
            for match in matches:
                if (other_name, match) in seen_rows:
                    continue
                joining.append((other_name, match))
                added += 1
                if added >= self.config.max_joining_tuples_per_ind:
                    break
        return joining

    def _variable_budget_reached(
        self,
        variable_of: Dict[object, Variable],
        known_constants: Set[object],
        variablize: bool,
    ) -> bool:
        budget = self.config.max_distinct_variables
        if budget is None:
            return False
        count = len(variable_of) if variablize else len(known_constants)
        return count >= budget
