"""Castor's IND-aware bottom-clause construction (Section 7.1).

The standard bottom-clause algorithm adds one literal per database tuple that
mentions a known constant.  Castor additionally *chases inclusion
dependencies*: when a tuple of relation ``Si`` (member of an inclusion class
``N``) is added, Castor follows every IND ``Sj[X] = Si[X]`` of ``N`` and adds
the joining tuples of ``Sj`` as well, recursively until the INDs of the class
are exhausted.  This makes the bottom clauses over a composed schema and its
decomposition equivalent (Lemma 7.5), which is the first ingredient of
Castor's schema independence.

The stopping condition is Castor's variable-budget rule: stop iterating once
the clause has a given number of *distinct variables* (equivalent clauses
over (de)compositions have the same number of distinct variables, unlike
clause depth or length).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..database.constraints import InclusionDependency
from ..database.instance import DatabaseInstance
from ..database.schema import Schema
from ..learning.bottom_clause import BottomClauseBuilder, BottomClauseConfig
from ..logic.atoms import Atom


class CastorBottomClauseConfig(BottomClauseConfig):
    """Bottom-clause limits plus Castor-specific IND options.

    ``max_joining_tuples_per_ind`` is the cap on how many tuples of the other
    side of an IND may be pulled in for a single tuple (the paper uses 10).
    ``use_subset_inds`` enables the Section 7.4 extension where general
    (subset-form) INDs are chased as well.
    """

    def __init__(
        self,
        max_depth: Optional[int] = 3,
        max_distinct_variables: Optional[int] = 15,
        max_literals_per_relation_per_tuple: int = 5,
        max_total_literals: int = 100,
        max_joining_tuples_per_ind: int = 10,
        use_subset_inds: bool = False,
    ):
        super().__init__(
            max_depth=max_depth,
            max_distinct_variables=max_distinct_variables,
            max_literals_per_relation_per_tuple=max_literals_per_relation_per_tuple,
            max_total_literals=max_total_literals,
        )
        self.max_joining_tuples_per_ind = int(max_joining_tuples_per_ind)
        self.use_subset_inds = bool(use_subset_inds)


class CastorBottomClauseBuilder(BottomClauseBuilder):
    """Construct IND-aware bottom clauses and saturations.

    The builder pre-computes, per relation, the list of INDs to chase (those
    of the relation's inclusion class), so the per-example construction only
    performs indexed lookups.  Frontier expansion (including level-synchronous
    batch construction over whole example generations) is inherited from the
    standard builder; the IND chase rides the same indexed seam through
    ``tuples_matching``.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        schema: Optional[Schema] = None,
        config: Optional[CastorBottomClauseConfig] = None,
        use_compiled_lookups: Optional[bool] = None,
        theory_constants: Optional[Set[object]] = None,
    ):
        # The working schema must be bound before the base constructor runs
        # theory-constant inference (which consults its FDs/INDs).
        self.schema = schema or instance.schema
        super().__init__(
            instance,
            config or CastorBottomClauseConfig(),
            use_compiled_lookups=use_compiled_lookups,
            theory_constants=theory_constants,
        )
        self._inds_by_relation: Dict[str, List[InclusionDependency]] = {}
        # Compiled per-relation chase plan: (other relation, own positions,
        # other positions) per IND, resolved once per schema instead of per
        # chased tuple (part of the "stored procedure" compilation step).
        self._chase_plan: Dict[str, List[Tuple[str, Tuple[int, ...], Tuple[int, ...]]]] = {}
        self._prepare_inclusion_metadata()

    def _theory_schema(self) -> Schema:
        return self.schema

    def saturation_spec(self) -> Optional[Tuple[object, ...]]:
        """Picklable recipe a shard worker rebuilds this builder from.

        Carries the working schema (the IND set the chase follows) and this
        builder's theory constants next to the config, so worker-side
        clauses are identical to in-process ones.
        """
        if type(self) is not CastorBottomClauseBuilder:
            return None
        return (
            "castor-bottom",
            self.schema,
            self.config,
            frozenset(self.theory_constants),
        )

    # ------------------------------------------------------------------ #
    # Metadata preparation (the "stored procedure" compilation step)
    # ------------------------------------------------------------------ #
    def _prepare_inclusion_metadata(self) -> None:
        include_subset = self.config.use_subset_inds
        for inclusion_class in self.schema.inclusion_classes(include_subset):
            if len(inclusion_class) < 2:
                continue
            for relation in inclusion_class.members:
                inds = inclusion_class.inds_for(relation)
                self._inds_by_relation.setdefault(relation, []).extend(inds)

    def inds_for(self, relation: str) -> List[InclusionDependency]:
        """INDs Castor chases when a tuple of ``relation`` enters the clause."""
        return self._inds_by_relation.get(relation, [])

    def _chase_plan_for(
        self, relation: str
    ) -> List[Tuple[str, Tuple[int, ...], Tuple[int, ...]]]:
        """Resolved join positions for every IND chased from ``relation``."""
        plan = self._chase_plan.get(relation)
        if plan is None:
            relation_schema = self.schema.relation(relation)
            plan = []
            for ind in self.inds_for(relation):
                other_name, own_attrs, other_attrs = ind.other_side(relation)
                plan.append(
                    (
                        other_name,
                        tuple(relation_schema.positions_of(own_attrs)),
                        tuple(self.schema.relation(other_name).positions_of(other_attrs)),
                    )
                )
            self._chase_plan[relation] = plan
        return plan

    # ------------------------------------------------------------------ #
    # Construction hook: one admitted tuple plus its inclusion-class chase
    # ------------------------------------------------------------------ #
    def _add_neighbor(
        self,
        state,
        relation_name: str,
        row: Tuple[object, ...],
        next_frontier: Set[object],
    ) -> None:
        """Add one tuple's literal and chase the INDs of its inclusion class."""
        pending: List[Tuple[str, Tuple[object, ...]]] = [(relation_name, row)]
        while pending:
            current_relation, current_row = pending.pop(0)
            key = (current_relation, current_row)
            if key in state.seen_rows:
                continue
            if len(state.body) >= self.config.max_total_literals:
                return
            state.seen_rows.add(key)
            state.body.append(
                Atom(current_relation, [self._term_for(state, v) for v in current_row])
            )
            for value in current_row:
                if value not in state.known_constants:
                    state.known_constants.add(value)
                    next_frontier.add(value)
            pending.extend(
                self._joining_tuples(
                    current_relation, current_row, state.seen_rows, state.join_cache
                )
            )

    def _joining_tuples(
        self,
        relation_name: str,
        row: Tuple[object, ...],
        seen_rows: Set[Tuple[str, Tuple[object, ...]]],
        join_cache: Optional[Dict[object, List[Tuple[object, ...]]]] = None,
    ) -> List[Tuple[str, Tuple[object, ...]]]:
        """Tuples of sibling relations that join with ``row`` through the class INDs.

        The underlying index lookups are pure functions of the database, so
        a batch-scoped ``join_cache`` (shared by every example of one
        construction call) deduplicates them across the generation; the
        per-call ``seen_rows`` filter stays outside the cache.
        """
        joining: List[Tuple[str, Tuple[object, ...]]] = []
        for other_name, own_positions, other_positions in self._chase_plan_for(
            relation_name
        ):
            key_values = tuple(row[p] for p in own_positions)
            cache_key = (other_name, other_positions, key_values)
            matches = None if join_cache is None else join_cache.get(cache_key)
            if matches is None:
                bindings = dict(zip(other_positions, key_values))
                matches = sorted(
                    self.instance.relation(other_name).tuples_matching(bindings),
                    key=lambda r: tuple(map(str, r)),
                )
                if join_cache is not None:
                    join_cache[cache_key] = matches
            added = 0
            for match in matches:
                if (other_name, match) in seen_rows:
                    continue
                joining.append((other_name, match))
                added += 1
                if added >= self.config.max_joining_tuples_per_ind:
                    break
        return joining
