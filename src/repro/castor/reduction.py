"""Castor's negative reduction over inclusion-class instances (Algorithm 5).

Negative reduction generalizes a clause by removing *non-essential* groups of
literals: a group is non-essential when removing it does not increase the
number of negative examples covered.  Castor removes whole inclusion-class
instances rather than individual literals so that the reduction commutes with
composition/decomposition (Lemma 7.8).  The safe variant (Section 7.3.3)
additionally keeps enough instances to preserve every head variable, so that
the reduced clause remains safe.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..database.schema import Schema
from ..learning.coverage import BatchCoverageEngine, SubsumptionCoverageEngine
from ..learning.examples import Example
from ..logic.atoms import Atom
from ..logic.clauses import HornClause
from ..logic.terms import Variable
from .inclusion_instances import (
    InclusionInstance,
    compute_inclusion_instances,
    head_connecting_instances,
)


class NegativeReducer:
    """Reduce clauses by discarding non-essential inclusion-class instances.

    Each negative-coverage probe (one prefix clause against the whole
    negative example list) is routed through a
    :class:`~repro.learning.coverage.BatchCoverageEngine`, so a probe is a
    single batched — poolable / shardable — evaluation rather than a
    per-example Python loop; the prefix boundary search additionally probes
    ``probe_width`` interior points per round (multi-way section search) so
    one batched call narrows the boundary as much as ``probe_width``
    sequential bisection steps would.  Pass ``batched=False`` to keep the
    original per-example sequential probes (the parity tests pit the two
    against each other).
    """

    def __init__(
        self,
        schema: Schema,
        coverage: SubsumptionCoverageEngine,
        include_subset_inds: bool = False,
        ensure_safe: bool = True,
        max_iterations: int = 50,
        batch: Optional[BatchCoverageEngine] = None,
        batched: bool = True,
        probe_width: Optional[int] = None,
    ):
        self.schema = schema
        self.coverage = coverage
        self.include_subset_inds = include_subset_inds
        self.ensure_safe = ensure_safe
        self.max_iterations = int(max_iterations)
        if batch is not None:
            self.batch: Optional[BatchCoverageEngine] = batch
        elif batched:
            self.batch = BatchCoverageEngine(coverage)
        else:
            self.batch = None
        if probe_width is None:
            # Default the section width to the batch's clause-level fan-out:
            # sequential configurations keep bisection's probe count, while
            # pooled/sharded ones trade extra (concurrent) probes for fewer
            # rounds.
            probe_width = self.batch.parallelism if self.batch is not None else 1
        self.probe_width = max(1, int(probe_width))

    # ------------------------------------------------------------------ #
    def reduce(
        self, clause: HornClause, negatives: Sequence[Example]
    ) -> HornClause:
        """Negative-reduce ``clause`` against the negative examples."""
        negatives = list(negatives)
        if not clause.body:
            return clause
        target_count = self._covered_negatives(clause, negatives)
        instances = compute_inclusion_instances(
            clause, self.schema, self.include_subset_inds
        )
        if self.ensure_safe:
            instances = self._sort_for_safety(clause, instances)
        head_variables = set(clause.head.variables())

        for _ in range(self.max_iterations):
            prefix_end = self._first_sufficient_prefix(
                clause, instances, negatives, target_count
            )
            if prefix_end is None:
                break
            pivot = instances[prefix_end]
            connecting = head_connecting_instances(pivot, instances, head_variables)
            kept: List[InclusionInstance] = []
            seen: Set[InclusionInstance] = set()
            for instance in (*connecting, pivot, *instances[:prefix_end]):
                if instance not in seen:
                    seen.add(instance)
                    kept.append(instance)
            if self.ensure_safe:
                kept = self._repair_safety(clause, kept, instances)
            if len(kept) >= len(instances):
                break
            instances = kept
        return self._clause_from_instances(clause, instances)

    # ------------------------------------------------------------------ #
    def _covered_negatives(
        self, clause: HornClause, negatives: Sequence[Example]
    ) -> int:
        """Number of negatives covered — one batched probe (or the Python loop)."""
        if self.batch is None:
            return sum(
                1
                for e in negatives
                if self.coverage.covers(clause, e, use_cache=False)
            )
        return self.batch.covered_masks_batch([clause], negatives)[0].bit_count()

    def _first_sufficient_prefix(
        self,
        clause: HornClause,
        instances: Sequence[InclusionInstance],
        negatives: Sequence[Example],
        target_count: int,
    ) -> Optional[int]:
        """Index of the first instance whose prefix already pins negative coverage.

        Returns the smallest ``i`` such that the clause built from instances
        ``0..i`` covers no more negatives than the full clause, or None when
        no prefix qualifies.  Because longer prefixes are more specific, the
        covered-negatives count is non-increasing in ``i``, so the boundary
        is located by section search: each round probes up to ``probe_width``
        interior points — every probe a single batched evaluation over the
        negatives — and shrinks the bracket around the boundary.  With width
        1 this is exactly bisection.
        """
        counts: Dict[int, int] = {}

        def probe(indices: Sequence[int]) -> None:
            pending: List[int] = []
            prefix_clauses: List[HornClause] = []
            for index in dict.fromkeys(indices):
                if index in counts:
                    continue
                prefix_clause = self._clause_from_instances(
                    clause, instances[: index + 1]
                )
                if not prefix_clause.body:
                    counts[index] = len(negatives) + 1
                    continue
                pending.append(index)
                prefix_clauses.append(prefix_clause)
            if not pending:
                return
            if self.batch is None:
                for index, prefix_clause in zip(pending, prefix_clauses):
                    counts[index] = sum(
                        1
                        for e in negatives
                        if self.coverage.covers(prefix_clause, e, use_cache=False)
                    )
            else:
                masks = self.batch.covered_masks_batch(prefix_clauses, negatives)
                for index, mask in zip(pending, masks):
                    counts[index] = mask.bit_count()

        last = len(instances) - 1
        probe([last])
        if counts[last] > target_count:
            return None
        low, high = 0, last
        while low < high:
            width = high - low
            sections = min(self.probe_width, width)
            points = sorted(
                {low + (width * (j + 1)) // (sections + 1) for j in range(sections)}
            )
            probe(points)
            for point in points:
                if counts[point] <= target_count:
                    high = min(high, point)
                else:
                    low = max(low, point + 1)
        return low

    def _clause_from_instances(
        self, clause: HornClause, instances: Sequence[InclusionInstance]
    ) -> HornClause:
        """Rebuild the clause body from the kept instances, preserving body order."""
        kept_literals: Set[Atom] = set()
        for instance in instances:
            kept_literals |= set(instance.literals)
        body = [literal for literal in clause.body if literal in kept_literals]
        return HornClause(clause.head, body)

    # ------------------------------------------------------------------ #
    # Safety handling (Section 7.3.3)
    # ------------------------------------------------------------------ #
    def _sort_for_safety(
        self, clause: HornClause, instances: List[InclusionInstance]
    ) -> List[InclusionInstance]:
        """Order instances by number of head variables they contain, descending."""
        head_variables = set(clause.head.variables())

        def head_var_count(instance: InclusionInstance) -> int:
            return len(instance.variables() & head_variables)

        return sorted(instances, key=head_var_count, reverse=True)

    def _repair_safety(
        self,
        clause: HornClause,
        kept: List[InclusionInstance],
        all_instances: Sequence[InclusionInstance],
    ) -> List[InclusionInstance]:
        """Add back discarded instances until every head variable is covered."""
        head_variables = set(clause.head.variables())
        covered: Set[Variable] = set()
        for instance in kept:
            covered |= instance.variables()
        missing = head_variables - covered
        if not missing:
            return kept
        repaired = list(kept)
        present: Set[InclusionInstance] = set(repaired)
        for instance in all_instances:
            if not missing:
                break
            if instance in present:
                continue
            provided = instance.variables() & missing
            if provided:
                repaired.append(instance)
                present.add(instance)
                missing -= provided
        return repaired
