"""Castor's negative reduction over inclusion-class instances (Algorithm 5).

Negative reduction generalizes a clause by removing *non-essential* groups of
literals: a group is non-essential when removing it does not increase the
number of negative examples covered.  Castor removes whole inclusion-class
instances rather than individual literals so that the reduction commutes with
composition/decomposition (Lemma 7.8).  The safe variant (Section 7.3.3)
additionally keeps enough instances to preserve every head variable, so that
the reduced clause remains safe.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..database.schema import Schema
from ..learning.coverage import SubsumptionCoverageEngine
from ..learning.examples import Example
from ..logic.atoms import Atom
from ..logic.clauses import HornClause
from ..logic.terms import Variable
from .inclusion_instances import (
    InclusionInstance,
    compute_inclusion_instances,
    head_connecting_instances,
)


class NegativeReducer:
    """Reduce clauses by discarding non-essential inclusion-class instances."""

    def __init__(
        self,
        schema: Schema,
        coverage: SubsumptionCoverageEngine,
        include_subset_inds: bool = False,
        ensure_safe: bool = True,
        max_iterations: int = 50,
    ):
        self.schema = schema
        self.coverage = coverage
        self.include_subset_inds = include_subset_inds
        self.ensure_safe = ensure_safe
        self.max_iterations = int(max_iterations)

    # ------------------------------------------------------------------ #
    def reduce(
        self, clause: HornClause, negatives: Sequence[Example]
    ) -> HornClause:
        """Negative-reduce ``clause`` against the negative examples."""
        negatives = list(negatives)
        if not clause.body:
            return clause
        covered_negatives = [
            e for e in negatives if self.coverage.covers(clause, e, use_cache=False)
        ]
        target_count = len(covered_negatives)
        instances = compute_inclusion_instances(
            clause, self.schema, self.include_subset_inds
        )
        if self.ensure_safe:
            instances = self._sort_for_safety(clause, instances)
        head_variables = set(clause.head.variables())

        for _ in range(self.max_iterations):
            prefix_end = self._first_sufficient_prefix(
                clause, instances, negatives, target_count
            )
            if prefix_end is None:
                break
            pivot = instances[prefix_end]
            connecting = head_connecting_instances(pivot, instances, head_variables)
            kept: List[InclusionInstance] = []
            for instance in connecting:
                if instance not in kept:
                    kept.append(instance)
            if pivot not in kept:
                kept.append(pivot)
            for instance in instances[:prefix_end]:
                if instance not in kept:
                    kept.append(instance)
            if self.ensure_safe:
                kept = self._repair_safety(clause, kept, instances)
            if len(kept) >= len(instances):
                break
            instances = kept
        return self._clause_from_instances(clause, instances)

    # ------------------------------------------------------------------ #
    def _first_sufficient_prefix(
        self,
        clause: HornClause,
        instances: Sequence[InclusionInstance],
        negatives: Sequence[Example],
        target_count: int,
    ) -> Optional[int]:
        """Index of the first instance whose prefix already pins negative coverage.

        Returns the smallest ``i`` such that the clause built from instances
        ``0..i`` covers no more negatives than the full clause, or None when
        no prefix qualifies.  Because longer prefixes are more specific, the
        covered-negatives count is non-increasing in ``i``, so the boundary is
        located by binary search (O(log n) coverage sweeps instead of O(n)).
        """
        def covered_by_prefix(index: int) -> int:
            prefix_clause = self._clause_from_instances(clause, instances[: index + 1])
            if not prefix_clause.body:
                return len(negatives) + 1
            return sum(
                1
                for e in negatives
                if self.coverage.covers(prefix_clause, e, use_cache=False)
            )

        last = len(instances) - 1
        if covered_by_prefix(last) > target_count:
            return None
        low, high = 0, last
        while low < high:
            middle = (low + high) // 2
            if covered_by_prefix(middle) <= target_count:
                high = middle
            else:
                low = middle + 1
        return low

    def _clause_from_instances(
        self, clause: HornClause, instances: Sequence[InclusionInstance]
    ) -> HornClause:
        """Rebuild the clause body from the kept instances, preserving body order."""
        kept_literals: Set[Atom] = set()
        for instance in instances:
            kept_literals |= set(instance.literals)
        body = [literal for literal in clause.body if literal in kept_literals]
        return HornClause(clause.head, body)

    # ------------------------------------------------------------------ #
    # Safety handling (Section 7.3.3)
    # ------------------------------------------------------------------ #
    def _sort_for_safety(
        self, clause: HornClause, instances: List[InclusionInstance]
    ) -> List[InclusionInstance]:
        """Order instances by number of head variables they contain, descending."""
        head_variables = set(clause.head.variables())

        def head_var_count(instance: InclusionInstance) -> int:
            return len(instance.variables() & head_variables)

        return sorted(instances, key=head_var_count, reverse=True)

    def _repair_safety(
        self,
        clause: HornClause,
        kept: List[InclusionInstance],
        all_instances: Sequence[InclusionInstance],
    ) -> List[InclusionInstance]:
        """Add back discarded instances until every head variable is covered."""
        head_variables = set(clause.head.variables())
        covered: Set[Variable] = set()
        for instance in kept:
            covered |= instance.variables()
        missing = head_variables - covered
        if not missing:
            return kept
        repaired = list(kept)
        for instance in all_instances:
            if not missing:
                break
            if instance in repaired:
                continue
            provided = instance.variables() & missing
            if provided:
                repaired.append(instance)
                missing -= provided
        return repaired
