"""Instances of inclusion classes inside a clause (Section 7.2.2).

Given a clause ``C`` and an inclusion class ``N = {S1..Sm}``, an *instance*
of ``N`` in ``C`` is a set of literals, one or more per member relation, such
that every IND ``Si[X] = Sj[X]`` of the class is witnessed by a pair of
literals whose terms agree on the ``X`` positions.  Literals of relations not
belonging to any multi-member inclusion class form singleton instances.

Castor's negative reduction removes whole inclusion instances (never
individual literals of an instance), which is what makes the reduction
commute with composition/decomposition (Lemma 7.8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..database.constraints import InclusionClass, InclusionDependency
from ..database.schema import Schema
from ..logic.atoms import Atom
from ..logic.clauses import HornClause
from ..logic.terms import Term, Variable


class InclusionInstance:
    """A group of clause literals forming one instance of an inclusion class."""

    __slots__ = ("literals", "class_members")

    def __init__(self, literals: Sequence[Atom], class_members: Optional[Set[str]] = None):
        self.literals: Tuple[Atom, ...] = tuple(literals)
        self.class_members: Set[str] = set(class_members or {a.predicate for a in literals})

    def variables(self) -> Set[Variable]:
        """All variables mentioned by the instance's literals."""
        variables: Set[Variable] = set()
        for literal in self.literals:
            variables |= set(literal.variables())
        return variables

    def contains_literal(self, literal: Atom) -> bool:
        return literal in self.literals

    def __len__(self) -> int:
        return len(self.literals)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, InclusionInstance) and set(other.literals) == set(self.literals)

    def __hash__(self) -> int:
        return hash(frozenset(self.literals))

    def __repr__(self) -> str:
        return f"InclusionInstance({[str(lit) for lit in self.literals]})"


def _terms_at(schema: Schema, literal: Atom, attributes: Sequence[str]) -> Optional[Tuple[Term, ...]]:
    """Terms of ``literal`` at the positions of ``attributes`` (None on arity mismatch)."""
    relation = schema.relation(literal.predicate)
    if literal.arity != relation.arity:
        return None
    positions = relation.positions_of(attributes)
    return tuple(literal.terms[p] for p in positions)


def literals_satisfy_ind(
    schema: Schema, ind: InclusionDependency, left_literal: Atom, right_literal: Atom
) -> bool:
    """True when the two literals witness the IND (projections agree)."""
    if left_literal.predicate != ind.left or right_literal.predicate != ind.right:
        return False
    left_terms = _terms_at(schema, left_literal, ind.left_attrs)
    right_terms = _terms_at(schema, right_literal, ind.right_attrs)
    if left_terms is None or right_terms is None:
        return False
    return left_terms == right_terms


def compute_inclusion_instances(
    clause: HornClause,
    schema: Schema,
    include_subset_inds: bool = False,
) -> List[InclusionInstance]:
    """Group the clause's body literals into inclusion-class instances.

    The instances are returned in the order of their first literal in the
    clause body (Algorithm 5 relies on this ordering).  A literal can belong
    to at most one instance; literals whose relation is not in a multi-member
    inclusion class each form a singleton instance.
    """
    instances: List[InclusionInstance] = []
    assigned: Set[int] = set()
    body = list(clause.body)

    for start_index, literal in enumerate(body):
        if start_index in assigned:
            continue
        inclusion_class = schema.inclusion_class_of(
            literal.predicate, include_subset_inds
        ) if schema.has_relation(literal.predicate) else None
        if inclusion_class is None:
            assigned.add(start_index)
            instances.append(InclusionInstance([literal]))
            continue
        member_indexes = _chase_instance(
            body, start_index, inclusion_class, schema, assigned
        )
        for index in member_indexes:
            assigned.add(index)
        instances.append(
            InclusionInstance(
                [body[i] for i in sorted(member_indexes)], inclusion_class.members
            )
        )
    return instances


def _chase_instance(
    body: List[Atom],
    start_index: int,
    inclusion_class: InclusionClass,
    schema: Schema,
    already_assigned: Set[int],
) -> Set[int]:
    """Collect the literal indexes belonging to the instance seeded at ``start_index``."""
    member_indexes: Set[int] = {start_index}
    frontier = [start_index]
    while frontier:
        current = frontier.pop()
        current_literal = body[current]
        for ind in inclusion_class.inds_for(current_literal.predicate):
            other_name, own_attrs, other_attrs = ind.other_side(current_literal.predicate)
            own_terms = _terms_at(schema, current_literal, own_attrs)
            if own_terms is None:
                continue
            for index, candidate in enumerate(body):
                if index in member_indexes or index in already_assigned:
                    continue
                if candidate.predicate != other_name:
                    continue
                candidate_terms = _terms_at(schema, candidate, other_attrs)
                if candidate_terms is not None and candidate_terms == own_terms:
                    member_indexes.add(index)
                    frontier.append(index)
    return member_indexes


def head_connecting_instances(
    target_instance: InclusionInstance,
    all_instances: Sequence[InclusionInstance],
    head_variables: Set[Variable],
) -> List[InclusionInstance]:
    """Instances forming a chain of shared variables from the head to ``target_instance``.

    Breadth-first search over the instance graph (nodes = instances, edges =
    shared variables; the head contributes its variables as the source).  The
    returned list excludes ``target_instance`` itself and preserves the order
    of ``all_instances``.
    """
    if target_instance.variables() & head_variables:
        return []
    # BFS from the head variable set.
    reached_vars = set(head_variables)
    parents: Dict[int, Optional[int]] = {}
    order = list(all_instances)
    frontier: List[int] = []
    for index, instance in enumerate(order):
        if instance is target_instance:
            continue
        if instance.variables() & reached_vars:
            parents[index] = None
            frontier.append(index)
    visited = set(frontier)
    connecting: List[int] = []
    found_path: Optional[List[int]] = None
    while frontier and found_path is None:
        current = frontier.pop(0)
        current_vars = order[current].variables()
        if target_instance.variables() & current_vars:
            # Reconstruct chain back to a head-connected instance.
            chain = [current]
            while parents[chain[-1]] is not None:
                chain.append(parents[chain[-1]])
            found_path = chain
            break
        for index, instance in enumerate(order):
            if index in visited or instance is target_instance:
                continue
            if instance.variables() & current_vars:
                visited.add(index)
                parents[index] = current
                frontier.append(index)
    if found_path is None:
        return []
    found = sorted(set(found_path))
    return [order[i] for i in found]
