"""A2-style query-based learner for function-free Horn definitions (Section 8).

The learner follows the structure of Khardon's A2 algorithm as implemented in
LogAn-H:

1. maintain a hypothesis ``H`` (initially empty) and a sequence of stored
   counterexamples;
2. ask an **equivalence query**; if the oracle says "equivalent", stop;
   otherwise receive a positive counterexample (a ground head with the ground
   body atoms of the scenario);
3. **minimize** the counterexample with membership queries: drop each ground
   body atom in turn and keep the removal whenever the reduced example is
   still entailed by the target (one MQ per attempted removal) — this is
   where the bulk of the membership queries are spent;
4. try to **pair** the minimized example with a stored one by computing the
   lgg of their clauses and asking an MQ whether the generalization is still
   entailed; otherwise store it as a new clause;
5. variablize the (possibly paired) example into a clause and add it to ``H``.

Query complexity: the number of EQs is governed by the number of clauses in
the target, while the number of MQs is proportional to the size of the
counterexamples' bodies — which grows when the schema is decomposed (one
composed literal becomes several) and when clauses have more variables.  That
is exactly the behaviour Figure 3 reports, and Theorem 8.1 formalizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..logic.atoms import Atom
from ..logic.clauses import HornClause, HornDefinition
from ..logic.lgg import lgg_clauses
from ..logic.subsumption import SubsumptionEngine
from ..logic.terms import Constant, Term, Variable
from .oracle import GroundExample, HornOracle, canonical_grounding


class A2Parameters:
    """Run limits for the A2-style learner."""

    def __init__(
        self,
        max_equivalence_queries: int = 200,
        max_clause_literals: int = 60,
        pairing_enabled: bool = True,
    ):
        self.max_equivalence_queries = int(max_equivalence_queries)
        self.max_clause_literals = int(max_clause_literals)
        self.pairing_enabled = bool(pairing_enabled)


class A2Result:
    """Learned hypothesis plus the query counts spent to obtain it."""

    __slots__ = ("hypothesis", "equivalence_queries", "membership_queries", "converged")

    def __init__(
        self,
        hypothesis: HornDefinition,
        equivalence_queries: int,
        membership_queries: int,
        converged: bool,
    ):
        self.hypothesis = hypothesis
        self.equivalence_queries = equivalence_queries
        self.membership_queries = membership_queries
        self.converged = converged

    def as_dict(self) -> Dict[str, float]:
        return {
            "equivalence_queries": self.equivalence_queries,
            "membership_queries": self.membership_queries,
            "clauses": len(self.hypothesis),
            "converged": self.converged,
        }

    def __repr__(self) -> str:
        return (
            f"A2Result(EQs={self.equivalence_queries}, MQs={self.membership_queries}, "
            f"converged={self.converged})"
        )


class A2Learner:
    """Learn a Horn definition by asking equivalence and membership queries."""

    name = "A2"

    def __init__(self, parameters: Optional[A2Parameters] = None):
        self.parameters = parameters or A2Parameters()
        self.engine = SubsumptionEngine()

    # ------------------------------------------------------------------ #
    def learn(self, oracle: HornOracle, target_name: str) -> A2Result:
        """Run the query-based learning loop against ``oracle``."""
        hypothesis = HornDefinition(target_name)
        stored: List[HornClause] = []
        converged = False

        for _ in range(self.parameters.max_equivalence_queries):
            counterexample = oracle.equivalence(hypothesis)
            if counterexample is None:
                converged = True
                break
            minimized = self._minimize(counterexample, oracle)
            clause = self._variablize(minimized)
            clause = self._pair_with_stored(clause, stored, oracle)
            stored.append(clause)
            hypothesis = HornDefinition(target_name, self._non_redundant(stored))

        return A2Result(
            hypothesis,
            oracle.equivalence_queries,
            oracle.membership_queries,
            converged,
        )

    # ------------------------------------------------------------------ #
    # Counterexample minimization (the MQ-heavy step)
    # ------------------------------------------------------------------ #
    def _minimize(self, example: GroundExample, oracle: HornOracle) -> GroundExample:
        """Drop ground body atoms that are not needed for entailment."""
        current = example
        index = len(current.body) - 1
        while index >= 0:
            candidate = current.without_body_atom(index)
            if oracle.membership(candidate):
                current = candidate
            index -= 1
            if index >= len(current.body):
                index = len(current.body) - 1
        return current

    # ------------------------------------------------------------------ #
    def _variablize(self, example: GroundExample) -> HornClause:
        """Replace each distinct constant of the example with a distinct variable."""
        mapping: Dict[object, Variable] = {}

        def term_for(term: Term) -> Term:
            if isinstance(term, Constant):
                variable = mapping.get(term.value)
                if variable is None:
                    variable = Variable(f"x{len(mapping)}")
                    mapping[term.value] = variable
                return variable
            return term

        head = Atom(example.head.predicate, [term_for(t) for t in example.head.terms])
        body = [
            Atom(atom.predicate, [term_for(t) for t in atom.terms])
            for atom in example.body
        ]
        return HornClause(head, body)

    def _pair_with_stored(
        self, clause: HornClause, stored: List[HornClause], oracle: HornOracle
    ) -> HornClause:
        """Try to merge the new clause with a stored clause via lgg + one MQ."""
        if not self.parameters.pairing_enabled:
            return clause
        for index, existing in enumerate(stored):
            if existing.head.predicate != clause.head.predicate:
                continue
            generalized = lgg_clauses(
                existing, clause, max_body_literals=self.parameters.max_clause_literals
            )
            if generalized is None or not generalized.body:
                continue
            generalized = HornClause(generalized.head, generalized.head_connected_body())
            if oracle.membership(canonical_grounding(generalized)):
                stored.pop(index)
                return generalized
        return clause

    def _non_redundant(self, clauses: List[HornClause]) -> List[HornClause]:
        """Drop clauses subsumed by another stored clause."""
        kept: List[HornClause] = []
        for clause in clauses:
            if any(self.engine.subsumes(other, clause) for other in kept):
                continue
            kept = [other for other in kept if not self.engine.subsumes(clause, other)]
            kept.append(clause)
        return kept
