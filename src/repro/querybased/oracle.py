"""Membership/equivalence-query oracle for query-based learning (Section 8).

The oracle knows a *target* Horn definition and answers two kinds of queries
(this is LogAn-H's "interactive algorithm with automatic user mode": the
system is told the definition to be learned so it can act as the oracle):

* **Membership query (MQ)** — given a ground example (a ground head atom plus
  the ground body atoms describing the scenario), is the example entailed by
  the target definition?  For non-recursive Horn definitions this reduces to
  a θ-subsumption test of some target clause against the example clause.
* **Equivalence query (EQ)** — is the submitted hypothesis equivalent to the
  target?  If not, return a *positive counterexample*: a canonical grounding
  of a target clause that the hypothesis does not entail.

Both query counters are exposed so experiments can report query complexity
(Figure 3).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..logic.atoms import Atom
from ..logic.clauses import HornClause, HornDefinition
from ..logic.subsumption import SubsumptionEngine
from ..logic.terms import Constant, Variable


class GroundExample:
    """A ground example: a ground head atom together with ground body atoms."""

    __slots__ = ("head", "body")

    def __init__(self, head: Atom, body: Tuple[Atom, ...]):
        self.head = head
        self.body = tuple(body)

    def as_clause(self) -> HornClause:
        return HornClause(self.head, self.body)

    def without_body_atom(self, index: int) -> "GroundExample":
        """Copy of the example with one body atom removed (used by minimization)."""
        new_body = list(self.body)
        del new_body[index]
        return GroundExample(self.head, tuple(new_body))

    def __repr__(self) -> str:
        return f"GroundExample({self.head}, {len(self.body)} body atoms)"


class HornOracle:
    """Answer MQs and EQs for a fixed target Horn definition."""

    def __init__(self, target_definition: HornDefinition):
        self.target = target_definition
        self.engine = SubsumptionEngine()
        self.membership_queries = 0
        self.equivalence_queries = 0

    # ------------------------------------------------------------------ #
    # Membership queries
    # ------------------------------------------------------------------ #
    def membership(self, example: GroundExample) -> bool:
        """MQ: is the ground example entailed by the target definition?"""
        self.membership_queries += 1
        example_clause = example.as_clause()
        return any(
            self.engine.subsumes(clause, example_clause) for clause in self.target
        )

    # ------------------------------------------------------------------ #
    # Equivalence queries
    # ------------------------------------------------------------------ #
    def equivalence(self, hypothesis: HornDefinition) -> Optional[GroundExample]:
        """EQ: None when the hypothesis is equivalent; otherwise a counterexample.

        Counterexamples are *positive*: canonical groundings of target
        clauses that the hypothesis fails to entail.  (A hypothesis clause not
        entailed by the target would be a negative counterexample; the A2-style
        learner here only ever generalizes from entailed data, so positive
        counterexamples suffice to drive learning and to detect convergence.)
        """
        self.equivalence_queries += 1
        for clause in self.target:
            example = canonical_grounding(clause)
            if not self._hypothesis_entails(hypothesis, example):
                return example
        for clause in hypothesis:
            example = canonical_grounding(clause)
            if not self._target_entails(example):
                # The hypothesis is too general; report the over-general
                # grounding so the learner can drop or tighten the clause.
                return example
        return None

    def _hypothesis_entails(self, hypothesis: HornDefinition, example: GroundExample) -> bool:
        example_clause = example.as_clause()
        return any(
            self.engine.subsumes(clause, example_clause) for clause in hypothesis
        )

    def _target_entails(self, example: GroundExample) -> bool:
        example_clause = example.as_clause()
        return any(self.engine.subsumes(clause, example_clause) for clause in self.target)

    # ------------------------------------------------------------------ #
    def query_counts(self) -> Dict[str, int]:
        """Counters reported by the Figure 3 experiment."""
        return {
            "equivalence_queries": self.equivalence_queries,
            "membership_queries": self.membership_queries,
        }

    def reset_counts(self) -> None:
        self.membership_queries = 0
        self.equivalence_queries = 0


def canonical_grounding(clause: HornClause) -> GroundExample:
    """Ground a clause by mapping each distinct variable to a distinct constant."""
    mapping: Dict[Variable, Constant] = {}
    for index, variable in enumerate(clause.variables()):
        mapping[variable] = Constant(f"c{index}")
    grounded = clause.apply(dict(mapping))
    return GroundExample(grounded.head, grounded.body)
