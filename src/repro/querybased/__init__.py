"""Query-based learning: MQ/EQ oracle, A2-style learner, random target generator."""

from .a2 import A2Learner, A2Parameters, A2Result
from .oracle import GroundExample, HornOracle, canonical_grounding
from .random_definitions import RandomDefinitionConfig, RandomDefinitionGenerator

__all__ = [
    "A2Learner",
    "A2Parameters",
    "A2Result",
    "GroundExample",
    "HornOracle",
    "RandomDefinitionConfig",
    "RandomDefinitionGenerator",
    "canonical_grounding",
]
