"""Random Horn-definition generator used by the Figure 3 experiment (Section 9.4).

The paper generates random Horn definitions over the Denormalized-2 UW-CSE
schema, parameterized by the number of clauses and the number of variables
per clause, then transforms them to the more decomposed schemas by vertical
decomposition.  This module reproduces that generator:

* each definition has ``num_clauses`` clauses for a fresh target relation of
  random arity (between 1 and the schema's maximum arity);
* each clause body is built from randomly chosen schema relations, populated
  with variables that are randomly either new (until the per-clause variable
  budget is reached) or reused;
* every head variable appears somewhere in the body (the clauses are safe);
* no constants or function symbols appear.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..database.schema import Schema
from ..logic.atoms import Atom
from ..logic.clauses import HornClause, HornDefinition
from ..logic.terms import Variable


class RandomDefinitionConfig:
    """Knobs of the random definition generator."""

    def __init__(
        self,
        num_clauses: int = 1,
        num_variables: int = 5,
        max_body_literals: int = 8,
        target_name: str = "target",
        min_target_arity: int = 1,
        max_target_arity: Optional[int] = None,
    ):
        self.num_clauses = int(num_clauses)
        self.num_variables = int(num_variables)
        self.max_body_literals = int(max_body_literals)
        self.target_name = str(target_name)
        self.min_target_arity = int(min_target_arity)
        self.max_target_arity = max_target_arity


class RandomDefinitionGenerator:
    """Generate random safe Horn definitions over a schema."""

    def __init__(self, schema: Schema, config: Optional[RandomDefinitionConfig] = None, seed: int = 0):
        self.schema = schema
        self.config = config or RandomDefinitionConfig()
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    def generate(self) -> HornDefinition:
        """One random definition respecting the configured limits."""
        max_schema_arity = max(r.arity for r in self.schema.relations)
        upper = self.config.max_target_arity or max_schema_arity
        arity = self._rng.randint(
            self.config.min_target_arity, max(self.config.min_target_arity, upper)
        )
        clauses = [self._generate_clause(arity) for _ in range(self.config.num_clauses)]
        return HornDefinition(self.config.target_name, clauses)

    def generate_many(self, count: int) -> List[HornDefinition]:
        """Several random definitions (used to average query counts)."""
        return [self.generate() for _ in range(count)]

    # ------------------------------------------------------------------ #
    def _generate_clause(self, target_arity: int) -> HornClause:
        budget = max(target_arity, self.config.num_variables)
        variables = [Variable(f"x{i}") for i in range(budget)]
        used: List[Variable] = []

        def pick_variable() -> Variable:
            # Prefer introducing new variables until the budget is used, then reuse.
            unused = [v for v in variables if v not in used]
            if unused and (not used or self._rng.random() < 0.6):
                choice = unused[0]
            else:
                choice = self._rng.choice(used or variables)
            if choice not in used:
                used.append(choice)
            return choice

        body: List[Atom] = []
        # Keep adding literals until every budgeted variable is used (and at
        # least one literal exists), without exceeding the body cap.
        while (len(used) < budget or not body) and len(body) < self.config.max_body_literals:
            relation = self._rng.choice(self.schema.relations)
            body.append(Atom(relation.name, [pick_variable() for _ in range(relation.arity)]))

        body_variables = list(dict.fromkeys(v for atom in body for v in atom.variables()))
        head_variables = body_variables[:target_arity]
        while len(head_variables) < target_arity:
            head_variables.append(body_variables[0])
        head = Atom(self.config.target_name, head_variables)
        return HornClause(head, body)
