"""Golem: bottom-up learning via relative least general generalization (Section 6.3).

Golem's ``LearnClause`` (Algorithm 2) samples ``K`` positive examples,
computes the rlgg of every pair of their saturations, keeps the candidates
that meet the minimum-precision condition, and then greedily folds further
examples into the best candidate until no improvement is possible.

The rlgg operator itself is schema independent (Theorem 6.4), but the clause
sizes it produces grow as the product of the saturations' sizes, so Golem is
only practical on small databases — the implementation exposes a literal cap
to keep runs bounded, exactly the kind of assumption the paper notes Golem
needs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..database.instance import DatabaseInstance
from ..database.schema import Schema
from ..foil.gain import precision
from ..learning.bottom_clause import BottomClauseConfig
from ..learning.coverage import SubsumptionCoverageEngine
from ..learning.covering import CoveringLearner, CoveringParameters
from ..learning.knobs import EvaluationKnobs, ThreadsAsParallelism
from ..learning.examples import Example, ExampleSet
from ..logic.clauses import HornClause, HornDefinition
from ..logic.lgg import lgg_clauses, rlgg
from ..logic.minimize import minimize_clause
from ..obs import span as obs_span


class GolemParameters:
    """Golem's knobs: pair-sample size K, minimum precision, and size caps."""

    def __init__(
        self,
        sample_size: int = 5,
        min_precision: float = 0.67,
        min_positives: int = 2,
        max_clauses: int = 25,
        max_clause_literals: int = 60,
        bottom_clause: Optional[BottomClauseConfig] = None,
        seed: int = 0,
    ):
        self.sample_size = int(sample_size)
        self.min_precision = float(min_precision)
        self.min_positives = int(min_positives)
        self.max_clauses = int(max_clauses)
        self.max_clause_literals = int(max_clause_literals)
        self.bottom_clause = bottom_clause or BottomClauseConfig(max_depth=2)
        self.seed = int(seed)


class _GolemClauseLearner:
    """LearnClause: pairwise rlgg of sampled saturations, then greedy extension."""

    learner_label = "Golem"

    def __init__(self, parameters: GolemParameters, coverage: SubsumptionCoverageEngine):
        self.parameters = parameters
        self.coverage = coverage
        self._rng = random.Random(parameters.seed)

    def learn_clause(
        self,
        instance: DatabaseInstance,
        uncovered_positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> Optional[HornClause]:
        if not uncovered_positives:
            return None
        sample = list(uncovered_positives)
        self._rng.shuffle(sample)
        sample = sample[: max(2, self.parameters.sample_size)]
        # The sampled saturations feed every pairwise rlgg below; build them
        # as one batch instead of a per-example loop.
        with obs_span(
            "learn.saturate", learner=self.learner_label, examples=len(sample)
        ):
            self.coverage.prepare(sample)

        candidates: List[HornClause] = []
        for i in range(len(sample)):
            for j in range(i + 1, len(sample)):
                candidate = self._pair_rlgg(sample[i], sample[j])
                if candidate is not None:
                    candidates.append(candidate)
        if not candidates and sample:
            # Fall back to the (variablized) saturation of a single example so
            # that at least a most-specific clause can be returned.
            single = self.coverage.saturation(sample[0])
            candidates.append(single)

        with obs_span(
            "learn.score", learner=self.learner_label, candidates=len(candidates)
        ):
            acceptable = [
                c
                for c in candidates
                if self._acceptable(c, uncovered_positives, negatives)
            ]
            if not acceptable:
                return None

            best = max(
                acceptable,
                key=lambda c: self.coverage.evaluate(
                    c, list(uncovered_positives), list(negatives)
                ).coverage_score(),
            )
        remaining = [e for e in sample if not self.coverage.covers(best, e)]

        improved = True
        while improved and remaining:
            improved = False
            for example in list(remaining):
                extended = lgg_clauses(
                    best,
                    self.coverage.saturation(example),
                    max_body_literals=self.parameters.max_clause_literals,
                )
                if extended is None:
                    continue
                extended = HornClause(extended.head, extended.head_connected_body())
                if not self._acceptable(extended, uncovered_positives, negatives):
                    continue
                old_score = self.coverage.evaluate(
                    best, list(uncovered_positives), list(negatives)
                ).coverage_score()
                new_score = self.coverage.evaluate(
                    extended, list(uncovered_positives), list(negatives)
                ).coverage_score()
                if new_score > old_score:
                    best = extended
                    remaining.remove(example)
                    improved = True
        with obs_span("learn.reduce", learner=self.learner_label):
            return minimize_clause(best)

    # ------------------------------------------------------------------ #
    def _pair_rlgg(self, first: Example, second: Example) -> Optional[HornClause]:
        saturation_first = self.coverage.saturation(first)
        saturation_second = self.coverage.saturation(second)
        return rlgg(
            saturation_first,
            saturation_second,
            max_body_literals=self.parameters.max_clause_literals,
        )

    def _acceptable(
        self,
        clause: HornClause,
        positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> bool:
        if not clause.body or not clause.is_safe():
            return False
        result = self.coverage.evaluate(clause, list(positives), list(negatives))
        if result.positives_covered < self.parameters.min_positives:
            return False
        return result.precision() >= self.parameters.min_precision


class GolemLearner(EvaluationKnobs, ThreadsAsParallelism):
    """Public Golem learner: rlgg-based bottom-up induction."""

    name = "Golem"

    def __init__(
        self,
        schema: Schema,
        parameters: Optional[GolemParameters] = None,
        threads: int = 1,
        parallelism: Optional[int] = None,
        backend: Optional[str] = None,
        shards: Optional[int] = None,
        saturation_store=None,
        context=None,
    ):
        self.schema = schema
        self.parameters = parameters or GolemParameters()
        self.threads = max(1, int(threads))
        self._init_evaluation_knobs(
            backend=backend, shards=shards, saturation_store=saturation_store
        )
        if parallelism is not None:
            self.threads = max(1, int(parallelism))
        self._apply_context(context)

    def learn(self, instance: DatabaseInstance, examples: ExampleSet) -> HornDefinition:
        instance = self._prepare_instance(instance)
        coverage = SubsumptionCoverageEngine(
            instance,
            self.parameters.bottom_clause,
            threads=self.threads,
            compiled=self.compiled_coverage,
            saturation_store=self.saturation_store,
        )
        clause_learner = _GolemClauseLearner(self.parameters, coverage)
        covering = CoveringLearner(
            clause_learner,
            coverage_fn=coverage.covered_examples,
            coverage_mask_fn=coverage.covered_mask,
            precision_fn=lambda clause, pos, neg: precision(
                len(coverage.covered_examples(clause, pos)),
                len(coverage.covered_examples(clause, neg)),
            ),
            parameters=CoveringParameters(
                min_precision=self.parameters.min_precision,
                min_positives=self.parameters.min_positives,
                max_clauses=self.parameters.max_clauses,
            ),
        )
        return covering.learn(instance, examples)
