"""Golem: rlgg-based bottom-up learning (baseline)."""

from .golem import GolemLearner, GolemParameters

__all__ = ["GolemLearner", "GolemParameters"]
