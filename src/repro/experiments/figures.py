"""Drivers that regenerate the paper's figures (Figures 2 and 3).

The figures are reported as data series (lists of points) rather than plots —
the benchmark harness prints the series, and EXPERIMENTS.md records them next
to the paper's curves.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, List, Optional, Sequence

from ..castor.castor import CastorLearner, CastorParameters
from ..castor.bottom_clause import CastorBottomClauseConfig
from ..datasets import hiv, imdb, uwcse
from ..querybased.a2 import A2Learner, A2Parameters
from ..querybased.oracle import HornOracle
from ..querybased.random_definitions import RandomDefinitionConfig, RandomDefinitionGenerator
from ..transform.transformation import SchemaTransformation


# --------------------------------------------------------------------- #
# Figure 2: impact of parallel coverage testing on Castor's running time
# --------------------------------------------------------------------- #
def figure2_parallelization(
    dataset: str = "hiv",
    thread_counts: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
    variant: Optional[str] = None,
) -> List[Dict[str, float]]:
    """Castor end-to-end learning time as a function of coverage-test threads.

    Returns one point per thread count: ``{"threads": k, "seconds": t}``.
    The paper's Figure 2 shows diminishing returns beyond 16-32 threads on the
    HIV datasets and no benefit on IMDb (few coverage tests needed); the same
    qualitative shape is expected here at reduced scale.
    """
    if dataset == "hiv":
        bundle = hiv.load_small(seed)
        variant = variant or "initial"
    elif dataset == "imdb":
        bundle = imdb.load(seed=seed)
        variant = variant or "jmdb"
    elif dataset == "uwcse":
        bundle = uwcse.load(seed=seed)
        variant = variant or "original"
    else:
        raise ValueError(f"unknown dataset {dataset!r}")

    schema = bundle.schema(variant)
    instance = bundle.instance(variant)
    series: List[Dict[str, float]] = []
    for threads in thread_counts:
        learner = CastorLearner(
            schema,
            CastorParameters(
                sample_size=3,
                beam_width=2,
                max_armg_rounds=5,
                bottom_clause=CastorBottomClauseConfig(max_depth=3, max_distinct_variables=15),
            ),
            threads=threads,
        )
        start = time.perf_counter()
        learner.learn(instance, bundle.examples)
        elapsed = time.perf_counter() - start
        series.append({"threads": float(threads), "seconds": elapsed})
    return series


# --------------------------------------------------------------------- #
# Figure 3: query complexity of the A2 algorithm across schema variants
# --------------------------------------------------------------------- #
def figure3_query_complexity(
    num_variables_range: Sequence[int] = (4, 5, 6, 7, 8),
    num_clauses: int = 1,
    definitions_per_setting: int = 10,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Average #EQs and #MQs of A2 per UW-CSE schema variant and variable count.

    Random Horn definitions are generated over the most composed schema
    (Denormalized-2), mapped to the other variants by the inverse
    decomposition (δτ), and learned from scratch with the query-based A2
    learner under each variant.  One data point is produced per (variant,
    num_variables) pair, averaging over ``definitions_per_setting`` random
    definitions — mirroring the Section 9.4 protocol (50 definitions per
    setting in the paper).
    """
    variants = uwcse.schema_variants()
    by_name = {variant.name: variant for variant in variants}
    most_composed = by_name["denormalized2"]
    ordered_names = ["original", "4nf", "denormalized1", "denormalized2"]

    points: List[Dict[str, float]] = []
    for num_variables in num_variables_range:
        generator = RandomDefinitionGenerator(
            most_composed.schema,
            RandomDefinitionConfig(
                num_clauses=num_clauses,
                num_variables=num_variables,
                target_name="target",
            ),
            seed=seed + num_variables,
        )
        definitions = generator.generate_many(definitions_per_setting)
        per_variant_eqs: Dict[str, List[int]] = {name: [] for name in ordered_names}
        per_variant_mqs: Dict[str, List[int]] = {name: [] for name in ordered_names}

        for definition in definitions:
            for name in ordered_names:
                variant = by_name[name]
                target_definition = _map_definition_to_variant(
                    definition, most_composed.transformation, variant.transformation
                )
                oracle = HornOracle(target_definition)
                learner = A2Learner(A2Parameters(max_equivalence_queries=50))
                learner.learn(oracle, target_definition.target)
                per_variant_eqs[name].append(oracle.equivalence_queries)
                per_variant_mqs[name].append(oracle.membership_queries)

        for name in ordered_names:
            points.append(
                {
                    "variant": name,
                    "num_variables": float(num_variables),
                    "mean_equivalence_queries": statistics.fmean(per_variant_eqs[name]),
                    "mean_membership_queries": statistics.fmean(per_variant_mqs[name]),
                }
            )
    return points


def _map_definition_to_variant(
    definition, from_transformation: SchemaTransformation, to_transformation: SchemaTransformation
):
    """Rewrite a definition over one variant into an equivalent one over another.

    Both variants are expressed as transformations from the same base schema,
    so the definition is first mapped back to the base schema (via the
    inverse of ``from_transformation``) and then forward to the target
    variant.
    """
    to_base = from_transformation.invert()
    over_base = to_base.map_definition(definition)
    return to_transformation.map_definition(over_base)
