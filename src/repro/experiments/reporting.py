"""Plain-text rendering of experiment results in the paper's table style."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .harness import VariantResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: Optional[str] = None
) -> str:
    """Render an aligned plain-text table."""
    columns = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(columns))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def results_as_matrix(
    results: Sequence[VariantResult], metric: str = "precision"
) -> Dict[str, Dict[str, float]]:
    """Pivot VariantResults into ``{learner: {variant: metric}}``."""
    matrix: Dict[str, Dict[str, float]] = {}
    for result in results:
        matrix.setdefault(result.learner, {})[result.variant] = getattr(result, metric)
    return matrix


def format_paper_table(
    results: Sequence[VariantResult],
    variants: Sequence[str],
    title: str,
    metrics: Sequence[str] = ("precision", "recall", "time_seconds"),
) -> str:
    """Render results in the paper's layout: one learner block, one row per metric."""
    metric_labels = {
        "precision": "Precision",
        "recall": "Recall",
        "time_seconds": "Time (s)",
        "f1": "F1",
    }
    headers = ["Algorithm", "Metric", *variants]
    rows: List[List[object]] = []
    learners: List[str] = []
    for result in results:
        if result.learner not in learners:
            learners.append(result.learner)
    by_key = {(r.learner, r.variant): r for r in results}
    for learner in learners:
        for metric in metrics:
            row: List[object] = [learner, metric_labels.get(metric, metric)]
            for variant in variants:
                result = by_key.get((learner, variant))
                row.append(getattr(result, metric) if result is not None else "-")
            rows.append(row)
    return format_table(headers, rows, title=title)


def format_dataset_statistics(statistics: Dict[str, Dict[str, int]], title: str) -> str:
    """Render Table 2-style dataset statistics (#relations, #tuples, #P, #N)."""
    headers = ["Schema", "#R", "#T", "#P", "#N"]
    rows = [
        [
            name,
            stats["relations"],
            stats["tuples"],
            stats["positives"],
            stats["negatives"],
        ]
        for name, stats in statistics.items()
    ]
    return format_table(headers, rows, title=title)
