"""Drivers that regenerate every table of the paper's evaluation (Section 9).

Each ``table*`` function returns structured results and can render the
paper-style text table; the ``benchmarks/`` directory wraps them in
pytest-benchmark targets.  Dataset scale and cross-validation folds default to
laptop-friendly values (the synthetic datasets are orders of magnitude smaller
than the originals — see DESIGN.md), and every function accepts the knobs
needed to push them up.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..castor.castor import CastorLearner, CastorParameters
from ..castor.bottom_clause import CastorBottomClauseConfig
from ..castor.stored_procedures import compare_stored_procedure_modes
from ..database.schema import Schema
from ..datasets import hiv, imdb, uwcse
from ..datasets.base import DatasetBundle
from ..foil.foil import FoilLearner, FoilParameters
from ..learning.bottom_clause import BottomClauseConfig
from ..progol.progol import AlephFoilLearner, ProgolLearner, ProgolParameters
from ..progolem.progolem import ProGolemLearner, ProGolemParameters
from .harness import LearnerSpec, VariantResult, run_schema_sweep
from .reporting import format_paper_table


# --------------------------------------------------------------------- #
# Learner factories (shared parameter choices, Section 9.1.2)
# --------------------------------------------------------------------- #
def castor_spec(
    threads: int = 1,
    use_subset_inds: bool = False,
    promote_inds_from_data: bool = False,
    name: str = "Castor",
) -> LearnerSpec:
    """Castor with the paper's settings (minprec=0.67, minpos=2)."""

    def factory(schema: Schema) -> CastorLearner:
        return CastorLearner(
            schema,
            CastorParameters(
                sample_size=3,
                beam_width=2,
                max_armg_rounds=5,
                use_subset_inds=use_subset_inds,
                promote_inds_from_data=promote_inds_from_data,
                bottom_clause=CastorBottomClauseConfig(
                    max_depth=3, max_distinct_variables=15
                ),
            ),
            threads=threads,
        )

    return LearnerSpec(name, factory)


def aleph_foil_spec(clause_length: int = 10, name: Optional[str] = None) -> LearnerSpec:
    """Aleph emulating FOIL: greedy search, gain scoring, given clauselength."""

    def factory(schema: Schema) -> AlephFoilLearner:
        return AlephFoilLearner(schema, clause_length=clause_length)

    return LearnerSpec(name or f"Aleph-FOIL (clauselength={clause_length})", factory)


def aleph_progol_spec(clause_length: int = 10, name: Optional[str] = None) -> LearnerSpec:
    """Aleph default (Progol-style): beam search, compression scoring."""

    def factory(schema: Schema) -> ProgolLearner:
        return ProgolLearner(
            schema,
            ProgolParameters(clause_length=clause_length, open_list_size=5),
        )

    return LearnerSpec(name or f"Aleph-Progol (clauselength={clause_length})", factory)


def foil_spec(name: str = "FOIL") -> LearnerSpec:
    """The original FOIL algorithm (schema-driven refinement, greedy gain)."""

    def factory(schema: Schema) -> FoilLearner:
        return FoilLearner(schema, FoilParameters(max_clause_length=5))

    return LearnerSpec(name, factory)


def progolem_spec(name: str = "ProGolem") -> LearnerSpec:
    """ProGolem with the paper's sampling/beam settings."""

    def factory(schema: Schema) -> ProGolemLearner:
        return ProGolemLearner(
            schema,
            ProGolemParameters(
                sample_size=3,
                beam_width=2,
                max_armg_rounds=5,
                bottom_clause=BottomClauseConfig(max_depth=3),
            ),
        )

    return LearnerSpec(name, factory)


# --------------------------------------------------------------------- #
# Tables 9-11: per-dataset schema sweeps
# --------------------------------------------------------------------- #
def table9_hiv(
    scale: str = "small",
    folds: int = 2,
    seed: int = 0,
    learners: Optional[Sequence[LearnerSpec]] = None,
) -> List[VariantResult]:
    """Table 9: HIV dataset, schemas Initial / 4NF-1 / 4NF-2.

    ``scale='small'`` is the HIV-2K4K stand-in, ``scale='large'`` the
    HIV-Large stand-in (bigger synthetic molecule set).
    """
    bundle = hiv.load_large(seed) if scale == "large" else hiv.load_small(seed)
    learners = list(
        learners
        or [
            aleph_foil_spec(clause_length=10),
            aleph_progol_spec(clause_length=10),
            castor_spec(),
        ]
    )
    return run_schema_sweep(bundle, learners, folds=folds, seed=seed)


def table10_uwcse(
    folds: int = 3,
    seed: int = 0,
    learners: Optional[Sequence[LearnerSpec]] = None,
    config: Optional[uwcse.UwCseConfig] = None,
) -> List[VariantResult]:
    """Table 10: UW-CSE dataset, schemas Original / 4NF / Denorm-1 / Denorm-2."""
    bundle = uwcse.load(config, seed)
    learners = list(
        learners
        or [
            foil_spec(),
            aleph_foil_spec(clause_length=6, name="Aleph-FOIL"),
            aleph_progol_spec(clause_length=6, name="Aleph-Progol"),
            progolem_spec(),
            castor_spec(),
        ]
    )
    return run_schema_sweep(bundle, learners, folds=folds, seed=seed)


def table11_imdb(
    folds: int = 2,
    seed: int = 0,
    learners: Optional[Sequence[LearnerSpec]] = None,
    config: Optional[imdb.ImdbConfig] = None,
) -> List[VariantResult]:
    """Table 11: IMDb dataset, schemas JMDB / Stanford / Denormalized."""
    bundle = imdb.load(config, seed)
    learners = list(
        learners
        or [
            aleph_foil_spec(clause_length=6, name="Aleph-FOIL"),
            aleph_progol_spec(clause_length=6, name="Aleph-Progol"),
            castor_spec(),
        ]
    )
    return run_schema_sweep(bundle, learners, folds=folds, seed=seed)


# --------------------------------------------------------------------- #
# Table 12: Castor with subset-form INDs only (general (de)composition)
# --------------------------------------------------------------------- #
def table12_general_inds(
    folds: int = 2, seed: int = 0, datasets: Sequence[str] = ("hiv", "uwcse", "imdb")
) -> Dict[str, List[VariantResult]]:
    """Table 12: Castor using only subset-form INDs over all three datasets.

    Every IND with equality in the schemas is downgraded to subset form, and
    Castor runs in its Section 7.4 direct-extension mode (chasing subset INDs
    without the preprocessing promotion).
    """
    results: Dict[str, List[VariantResult]] = {}
    loaders: Dict[str, Callable[[], DatasetBundle]] = {
        "hiv": lambda: hiv.load_small(seed),
        "uwcse": lambda: uwcse.load(seed=seed),
        "imdb": lambda: imdb.load(seed=seed),
    }
    spec = castor_spec(use_subset_inds=True, name="Castor (subset INDs)")
    for dataset_name in datasets:
        bundle = loaders[dataset_name]()
        downgraded = _downgrade_bundle_inds(bundle)
        results[dataset_name] = run_schema_sweep(downgraded, [spec], folds=folds, seed=seed)
    return results


def _downgrade_bundle_inds(bundle: DatasetBundle) -> DatasetBundle:
    """Replace every variant's schema INDs-with-equality by subset-form INDs.

    The underlying data is unchanged; only the constraint metadata visible to
    the learner is weakened, matching the Table 12 protocol.
    """
    for name in bundle.variant_names:
        variant = bundle.variant(name)
        transformation = variant.transformation
        weakened = transformation.target_schema.with_subset_inds_only(
            name=transformation.target_schema.name
        )
        transformation.target_schema = weakened
        # Materialized instances must carry the weakened schema too.
        if name in bundle._materialized:
            del bundle._materialized[name]
    return bundle


# --------------------------------------------------------------------- #
# Table 13: impact of stored procedures
# --------------------------------------------------------------------- #
def table13_stored_procedures(
    seed: int = 0, datasets: Sequence[str] = ("hiv", "imdb")
) -> Dict[str, Dict[str, float]]:
    """Table 13: Castor bottom-clause construction with vs without stored procedures."""
    results: Dict[str, Dict[str, float]] = {}
    if "hiv" in datasets:
        bundle = hiv.load_small(seed)
        results["hiv"] = compare_stored_procedure_modes(
            bundle.instance("initial"),
            bundle.examples.positives,
            bundle.schema("initial"),
        )
    if "imdb" in datasets:
        bundle = imdb.load(seed=seed)
        results["imdb"] = compare_stored_procedure_modes(
            bundle.instance("jmdb"),
            bundle.examples.positives,
            bundle.schema("jmdb"),
        )
    if "uwcse" in datasets:
        bundle = uwcse.load(seed=seed)
        results["uwcse"] = compare_stored_procedure_modes(
            bundle.instance("original"),
            bundle.examples.positives,
            bundle.schema("original"),
        )
    return results


# --------------------------------------------------------------------- #
# Rendering helpers
# --------------------------------------------------------------------- #
def render_table(results: Sequence[VariantResult], variants: Sequence[str], title: str) -> str:
    """Render any schema-sweep result in the paper's table layout."""
    return format_paper_table(results, variants, title)
