"""Experiment harness, per-table/figure drivers, and text reporting."""

from .figures import figure2_parallelization, figure3_query_complexity
from .harness import (
    LearnerSpec,
    SchemaIndependenceReport,
    VariantResult,
    check_schema_independence,
    run_schema_sweep,
    run_variant,
)
from .reporting import (
    format_dataset_statistics,
    format_paper_table,
    format_table,
    results_as_matrix,
)
from .tables import (
    aleph_foil_spec,
    aleph_progol_spec,
    castor_spec,
    foil_spec,
    progolem_spec,
    render_table,
    table9_hiv,
    table10_uwcse,
    table11_imdb,
    table12_general_inds,
    table13_stored_procedures,
)

__all__ = [
    "LearnerSpec",
    "SchemaIndependenceReport",
    "VariantResult",
    "aleph_foil_spec",
    "aleph_progol_spec",
    "castor_spec",
    "check_schema_independence",
    "figure2_parallelization",
    "figure3_query_complexity",
    "foil_spec",
    "format_dataset_statistics",
    "format_paper_table",
    "format_table",
    "progolem_spec",
    "render_table",
    "results_as_matrix",
    "run_schema_sweep",
    "run_variant",
    "table9_hiv",
    "table10_uwcse",
    "table11_imdb",
    "table12_general_inds",
    "table13_stored_procedures",
]
