"""Experiment harness: run learners across schema variants and collect metrics.

The harness drives the paper's Section 9 methodology:

1. take a :class:`DatasetBundle` (instance + examples + schema variants);
2. for each schema variant and each learner, run k-fold cross-validation and
   record precision, recall, and learning time (Tables 9-12);
3. additionally learn on the full training data per variant and compare the
   *outputs* across variants (do the learned definitions return the same
   result relation on corresponding instances?) — the direct empirical test
   of schema independence.
"""

from __future__ import annotations

import statistics
import time
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..database.backend import configure_backend_sharding
from ..database.instance import DatabaseInstance
from ..database.schema import Schema
from ..database.sqlite_backend import SaturationStore
from ..datasets.base import DatasetBundle
from ..learning.evaluation import CrossValidationReport, cross_validate, evaluate_definition
from ..learning.examples import ExampleSet
from ..logic.clauses import HornDefinition
from ..transform.equivalence import definition_results

LearnerFactory = Callable[[Schema], object]


class LearnerSpec:
    """A named learner plus the factory that instantiates it for a schema."""

    def __init__(self, name: str, factory: LearnerFactory):
        self.name = str(name)
        self.factory = factory

    def build(self, schema: Schema) -> object:
        return self.factory(schema)

    def __repr__(self) -> str:
        return f"LearnerSpec({self.name!r})"


# Best-effort knobs stay best-effort (the harness drives heterogeneous
# learner line-ups), but silently ignoring an explicit setting hides typos
# and wasted configuration — say so once per distinct situation.
_warned_knobs: Set[str] = set()


def _warn_once(message: str) -> None:
    if message in _warned_knobs:
        return
    _warned_knobs.add(message)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _apply_parallelism(learner: object, parallelism: Optional[int]) -> object:
    """Set the clause-scoring fan-out on learners that expose the knob.

    Learners without a ``parallelism`` attribute (e.g. Golem/Progol) are
    returned unchanged; the first time that happens for a learner class the
    harness warns, so an explicitly requested fan-out is never ignored
    silently.
    """
    if parallelism is None:
        return learner
    if hasattr(learner, "parallelism"):
        learner.parallelism = parallelism
    else:
        _warn_once(
            f"learner {type(learner).__name__} has no 'parallelism' knob; "
            f"ignoring parallelism={parallelism}"
        )
    return learner


def _apply_shards(instance: DatabaseInstance, shards: Optional[int]) -> None:
    """Set the worker count on instances whose backend is sharded.

    Mirrors :func:`_apply_parallelism`: best-effort, but an explicit
    ``shards=`` on a backend without a sharded evaluation service warns
    once instead of vanishing.  One shared probe
    (:func:`~repro.database.backend.configure_backend_sharding`) backs the
    harness, the learners, and the benchmarks, so the behavior is uniform.
    """
    configure_backend_sharding(instance.backend, shards)


def _presaturate(learner: object, instance: DatabaseInstance, examples) -> None:
    """Warm the learner's shared saturation store for the whole example set.

    Builds the learner's coverage engine once and materializes every
    example's saturation through the batched entry point — one call, fanned
    across the worker fleet on sharded backends — so cross-validation folds
    start from a warm store instead of each fold saturating its own split
    lazily.  A no-op for learners without a coverage-engine factory or
    engines without batched materialization (e.g. FOIL's query coverage).
    """
    make_engine = getattr(learner, "make_coverage_engine", None)
    if make_engine is None:
        _warn_once(
            f"learner {type(learner).__name__} has no coverage-engine "
            "factory; ignoring presaturate=True"
        )
        return
    engine = make_engine(instance)
    materialize = getattr(engine, "materialize", None)
    if materialize is None or not getattr(engine, "compiled_enabled", False):
        # Without the compiled store the warm-up would only fill this
        # throwaway engine's private cache — skip instead of double-paying.
        _warn_once(
            f"presaturate=True has no shared store to warm on "
            f"{type(engine).__name__} (backend "
            f"{getattr(instance, 'backend_name', '?')!r}); ignoring it"
        )
        return
    materialize(examples.all_examples())


def _apply_saturation_store(
    learner: object, store_supplier: Optional[Callable[[], SaturationStore]]
) -> object:
    """Hand learners that support it a shared saturation store.

    Used to keep one warm store across cross-validation folds over the same
    instance.  The store is supplied lazily so no SQLite connection is ever
    opened for learners without the knob (FOIL's query coverage has no
    saturations).
    """
    if store_supplier is not None and hasattr(learner, "saturation_store"):
        learner.saturation_store = store_supplier()
    return learner


class VariantResult:
    """Metrics of one learner on one schema variant."""

    def __init__(
        self,
        learner: str,
        variant: str,
        precision: float,
        recall: float,
        f1: float,
        time_seconds: float,
        definition: Optional[HornDefinition] = None,
        folds: int = 1,
    ):
        self.learner = learner
        self.variant = variant
        self.precision = precision
        self.recall = recall
        self.f1 = f1
        self.time_seconds = time_seconds
        self.definition = definition
        self.folds = folds

    def as_dict(self) -> Dict[str, object]:
        return {
            "learner": self.learner,
            "variant": self.variant,
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
            "f1": round(self.f1, 3),
            "time_seconds": round(self.time_seconds, 3),
            "folds": self.folds,
        }

    def __repr__(self) -> str:
        return (
            f"VariantResult({self.learner} on {self.variant}: "
            f"P={self.precision:.2f} R={self.recall:.2f} t={self.time_seconds:.2f}s)"
        )


def run_variant(
    bundle: DatasetBundle,
    variant_name: str,
    learner_spec: LearnerSpec,
    folds: int = 3,
    seed: int = 0,
    backend: Optional[str] = None,
    parallelism: Optional[int] = None,
    shards: Optional[int] = None,
    reuse_saturation_store: bool = True,
    presaturate: bool = False,
) -> VariantResult:
    """Cross-validate one learner on one schema variant of the dataset.

    ``backend`` selects the storage/evaluation backend the instance is
    materialized on (``memory``/``sqlite``/``sqlite-pooled``/
    ``sqlite-sharded``); ``None`` keeps the bundle's own.  ``parallelism``
    sets the clause-scoring fan-out on learners that support it and
    ``shards`` the worker count on sharded backends (results are identical
    for every value of either; only wall-clock time changes).  With
    ``reuse_saturation_store`` (default), learners with compiled subsumption
    coverage share one warm :class:`SaturationStore` across the folds of
    this variant instead of materializing saturations per fold — fold
    results are identical either way (saturations of one example on one
    instance do not depend on the fold split).  ``presaturate`` additionally
    materializes every example's saturation into that shared store *before*
    the folds run — one batched call (sharded backends fan it across their
    worker fleet), excluded from the per-fold learning times.
    """
    schema = bundle.schema(variant_name)
    instance = bundle.instance(variant_name)
    if backend is not None and backend != instance.backend_name:
        instance = instance.with_backend(backend)
    _apply_shards(instance, shards)
    shared: List[SaturationStore] = []

    def store_supplier() -> SaturationStore:
        if not shared:
            shared.append(SaturationStore())
        return shared[0]

    def factory() -> object:
        learner = _apply_parallelism(learner_spec.build(schema), parallelism)
        return _apply_saturation_store(
            learner, store_supplier if reuse_saturation_store else None
        )

    if presaturate:
        if reuse_saturation_store:
            _presaturate(factory(), instance, bundle.examples)
        else:
            # Without a shared store the warm-up would be thrown away with
            # the first fold's engine — say so instead of silently skipping.
            _warn_once(
                "presaturate=True has no effect with "
                "reuse_saturation_store=False; ignoring it"
            )

    if folds <= 1:
        learner = factory()
        train, test = bundle.examples.train_test_split(test_fraction=0.3, seed=seed)
        start = time.perf_counter()
        definition = learner.learn(instance, train)
        elapsed = time.perf_counter() - start
        evaluation = evaluate_definition(definition, instance, test)
        return VariantResult(
            learner_spec.name,
            variant_name,
            evaluation.precision,
            evaluation.recall,
            evaluation.f1,
            elapsed,
            definition,
            folds=1,
        )

    report = cross_validate(factory, instance, bundle.examples, folds=folds, seed=seed)
    definition = report.outcomes[0].definition if report.outcomes else None
    return VariantResult(
        learner_spec.name,
        variant_name,
        report.precision,
        report.recall,
        report.f1,
        report.mean_learn_seconds,
        definition,
        folds=folds,
    )


def run_schema_sweep(
    bundle: DatasetBundle,
    learner_specs: Sequence[LearnerSpec],
    variants: Optional[Sequence[str]] = None,
    folds: int = 3,
    seed: int = 0,
    backend: Optional[str] = None,
    parallelism: Optional[int] = None,
    shards: Optional[int] = None,
    reuse_saturation_store: bool = True,
    presaturate: bool = False,
) -> List[VariantResult]:
    """Run every learner on every schema variant (one of the paper's tables)."""
    variants = list(variants or bundle.variant_names)
    if backend is not None:
        # Convert once up front: the bundle caches the re-materialized
        # instance per variant, instead of once per learner x variant.
        bundle = bundle.with_backend(backend)
    results: List[VariantResult] = []
    for learner_spec in learner_specs:
        for variant_name in variants:
            results.append(
                run_variant(
                    bundle,
                    variant_name,
                    learner_spec,
                    folds,
                    seed,
                    parallelism=parallelism,
                    shards=shards,
                    reuse_saturation_store=reuse_saturation_store,
                    presaturate=presaturate,
                )
            )
    return results


class SchemaIndependenceReport:
    """Outcome of the direct schema-independence check for one learner."""

    def __init__(
        self,
        learner: str,
        result_sizes: Dict[str, int],
        pairwise_equivalent: Dict[str, bool],
        definitions: Dict[str, HornDefinition],
    ):
        self.learner = learner
        self.result_sizes = result_sizes
        self.pairwise_equivalent = pairwise_equivalent
        self.definitions = definitions

    @property
    def is_schema_independent(self) -> bool:
        """True when the learner produced equivalent outputs on every variant pair."""
        return all(self.pairwise_equivalent.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "learner": self.learner,
            "schema_independent": self.is_schema_independent,
            "result_sizes": dict(self.result_sizes),
            "pairwise_equivalent": dict(self.pairwise_equivalent),
        }

    def __repr__(self) -> str:
        return (
            f"SchemaIndependenceReport({self.learner!r}, "
            f"independent={self.is_schema_independent})"
        )


def check_schema_independence(
    bundle: DatasetBundle,
    learner_spec: LearnerSpec,
    variants: Optional[Sequence[str]] = None,
    seed: int = 0,
    backend: Optional[str] = None,
    parallelism: Optional[int] = None,
    shards: Optional[int] = None,
) -> SchemaIndependenceReport:
    """Learn on every variant with the full training data and compare outputs.

    The comparison is semantic: each learned definition is evaluated on its
    own variant's instance and the result relations are compared across
    variants (Definition 3.10 instantiated on the actual data).
    """
    variants = list(variants or bundle.variant_names)
    if backend is not None:
        bundle = bundle.with_backend(backend)
    definitions: Dict[str, HornDefinition] = {}
    results: Dict[str, frozenset] = {}
    for variant_name in variants:
        schema = bundle.schema(variant_name)
        instance = bundle.instance(variant_name)
        _apply_shards(instance, shards)
        learner = _apply_parallelism(learner_spec.build(schema), parallelism)
        definition = learner.learn(instance, bundle.examples)
        definitions[variant_name] = definition
        results[variant_name] = frozenset(definition_results(definition, instance))

    pairwise: Dict[str, bool] = {}
    for i, first in enumerate(variants):
        for second in variants[i + 1 :]:
            pairwise[f"{first}|{second}"] = results[first] == results[second]

    sizes = {name: len(results[name]) for name in variants}
    return SchemaIndependenceReport(learner_spec.name, sizes, pairwise, definitions)
