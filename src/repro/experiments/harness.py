"""Experiment harness: run learners across schema variants and collect metrics.

The harness drives the paper's Section 9 methodology:

1. take a :class:`DatasetBundle` (instance + examples + schema variants);
2. for each schema variant and each learner, run k-fold cross-validation and
   record precision, recall, and learning time (Tables 9-12);
3. additionally learn on the full training data per variant and compare the
   *outputs* across variants (do the learned definitions return the same
   result relation on corresponding instances?) — the direct empirical test
   of schema independence.

Every entry point runs on the **session API**
(:class:`~repro.session.session.LearningSession` /
:class:`~repro.session.config.SessionConfig`): pass ``session=`` to share
one session — and therefore one set of prepared instances, warm evaluation
services, and saturation stores — across many calls, or keep passing the
legacy ``backend=``/``parallelism=``/``shards=`` keywords and the harness
wraps them in a per-call session for you.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Dict, List, Optional, Sequence

from ..database.instance import DatabaseInstance
from ..database.schema import Schema
from ..learning.evaluation import CrossValidationReport, cross_validate, evaluate_definition
from ..logic.clauses import HornDefinition
from ..session.config import SessionConfig, warn_once as _warn_once
from ..session.session import LearningSession
from ..transform.equivalence import definition_results

LearnerFactory = Callable[[Schema], object]


class LearnerSpec:
    """A named learner plus the factory that instantiates it for a schema."""

    def __init__(self, name: str, factory: LearnerFactory):
        self.name = str(name)
        self.factory = factory

    def build(self, schema: Schema) -> object:
        return self.factory(schema)

    def __repr__(self) -> str:
        return f"LearnerSpec({self.name!r})"


# --------------------------------------------------------------------- #
# Deprecated per-knob helpers (kept as thin shims over the single
# SessionConfig.apply normalization path)
# --------------------------------------------------------------------- #
_deprecation_warned = False


def _warn_knob_helpers_deprecated() -> None:
    global _deprecation_warned
    if _deprecation_warned:
        return
    _deprecation_warned = True
    warnings.warn(
        "_apply_parallelism/_apply_shards are deprecated; "
        "SessionConfig(...).apply(learner, instance=...) is the single "
        "normalization path (see docs/session.md)",
        DeprecationWarning,
        stacklevel=3,
    )


def _apply_parallelism(learner: object, parallelism: Optional[int]) -> object:
    """Deprecated: use :meth:`SessionConfig.apply`.

    Kept as a shim so older call sites keep working; the warn-once
    best-effort semantics live in :meth:`SessionConfig.apply` now.
    """
    if parallelism is None:
        return learner
    _warn_knob_helpers_deprecated()
    return SessionConfig(parallelism=parallelism).apply(learner)


def _apply_shards(instance: DatabaseInstance, shards: Optional[int]) -> None:
    """Deprecated: use :meth:`SessionConfig.apply`.

    Kept as a shim so older call sites keep working; warns once (via the
    shared :func:`~repro.database.backend.configure_backend_sharding`
    probe) when the instance's backend has no sharded service.
    """
    if shards is None:
        return
    _warn_knob_helpers_deprecated()
    SessionConfig(shards=shards).apply(instance=instance)


def _reject_knobs_with_session(**knobs: object) -> None:
    """Per-call knobs and an explicit session cannot both win — say so."""
    set_knobs = {name: value for name, value in knobs.items() if value is not None}
    if set_knobs:
        raise ValueError(
            f"{sorted(set_knobs)} cannot be combined with session=; "
            "configure them on the session's SessionConfig instead"
        )


class VariantResult:
    """Metrics of one learner on one schema variant."""

    def __init__(
        self,
        learner: str,
        variant: str,
        precision: float,
        recall: float,
        f1: float,
        time_seconds: float,
        definition: Optional[HornDefinition] = None,
        folds: int = 1,
    ):
        self.learner = learner
        self.variant = variant
        self.precision = precision
        self.recall = recall
        self.f1 = f1
        self.time_seconds = time_seconds
        self.definition = definition
        self.folds = folds

    def as_dict(self) -> Dict[str, object]:
        return {
            "learner": self.learner,
            "variant": self.variant,
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
            "f1": round(self.f1, 3),
            "time_seconds": round(self.time_seconds, 3),
            "folds": self.folds,
        }

    def __repr__(self) -> str:
        return (
            f"VariantResult({self.learner} on {self.variant}: "
            f"P={self.precision:.2f} R={self.recall:.2f} t={self.time_seconds:.2f}s)"
        )


def _session_for(
    session: Optional[LearningSession],
    backend: Optional[str],
    parallelism: Optional[int],
    shards: Optional[int],
    reuse_saturation_store: bool = True,
) -> tuple:
    """Resolve the (session, owns_session) pair every entry point needs.

    The owned config never carries ``presaturate``: the keyword stays the
    single source of truth inside :func:`run_variant` (including the
    legacy warn-and-run path for ``presaturate`` without a shared store,
    which direct ``SessionConfig`` construction rejects).
    """
    if session is not None:
        _reject_knobs_with_session(
            backend=backend, parallelism=parallelism, shards=shards
        )
        return session, False
    owned = LearningSession(
        SessionConfig(
            backend=backend,
            parallelism=parallelism,
            shards=shards,
            reuse_saturation_store=reuse_saturation_store,
        )
    )
    return owned, True


def run_variant(
    bundle,
    variant_name: str,
    learner_spec: LearnerSpec,
    folds: int = 3,
    seed: int = 0,
    backend: Optional[str] = None,
    parallelism: Optional[int] = None,
    shards: Optional[int] = None,
    reuse_saturation_store: bool = True,
    presaturate: bool = False,
    session: Optional[LearningSession] = None,
) -> VariantResult:
    """Cross-validate one learner on one schema variant of the dataset.

    With ``session=`` the run rides that session's prepared instances,
    warm evaluation services, and shared saturation stores (repeat calls
    start warm; ``backend``/``parallelism``/``shards`` then live on the
    session's :class:`SessionConfig` and may not be passed here).  Without
    it, the legacy keywords are wrapped in a per-call session: ``backend``
    selects the storage/evaluation backend, ``parallelism`` the
    clause-scoring fan-out, ``shards`` the worker count on sharded
    backends (results are identical for every value of either; only
    wall-clock time changes).  With ``reuse_saturation_store`` (default),
    learners with compiled subsumption coverage share one warm
    :class:`SaturationStore` across the folds of this variant; fold
    results are identical either way.  ``presaturate`` additionally
    materializes every example's saturation into that shared store
    *before* the folds run — one batched call (sharded backends fan it
    across their worker fleet), excluded from the per-fold learning times.
    """
    session, owns_session = _session_for(
        session, backend, parallelism, shards, reuse_saturation_store
    )
    config = session.config
    effective_reuse = reuse_saturation_store and config.reuse_saturation_store
    effective_presaturate = presaturate or config.presaturate
    try:
        schema = bundle.schema(variant_name)
        instance = session.prepare(bundle.instance(variant_name))
        supplier = session.store_supplier(instance) if effective_reuse else None

        def factory() -> object:
            learner = session.apply(learner_spec.build(schema))
            if supplier is not None and hasattr(learner, "saturation_store"):
                # Keyed by the learner's saturation config: folds and
                # repeat runs of one spec share a warm store, differently
                # configured learners never do.
                learner.saturation_store = supplier(learner)
            return learner

        if effective_presaturate:
            if effective_reuse:
                session.presaturate(factory(), instance, bundle.examples)
            else:
                # Without a shared store the warm-up would be thrown away
                # with the first fold's engine — say so, don't double-pay.
                _warn_once(
                    "presaturate=True has no effect with "
                    "reuse_saturation_store=False; ignoring it"
                )

        if folds <= 1:
            learner = factory()
            train, test = bundle.examples.train_test_split(
                test_fraction=0.3, seed=seed
            )
            start = time.perf_counter()
            definition = learner.learn(instance, train)
            elapsed = time.perf_counter() - start
            evaluation = evaluate_definition(definition, instance, test)
            return VariantResult(
                learner_spec.name,
                variant_name,
                evaluation.precision,
                evaluation.recall,
                evaluation.f1,
                elapsed,
                definition,
                folds=1,
            )

        report: CrossValidationReport = cross_validate(
            factory, instance, bundle.examples, folds=folds, seed=seed
        )
        definition = report.outcomes[0].definition if report.outcomes else None
        return VariantResult(
            learner_spec.name,
            variant_name,
            report.precision,
            report.recall,
            report.f1,
            report.mean_learn_seconds,
            definition,
            folds=folds,
        )
    finally:
        if owns_session:
            session.close()


def run_schema_sweep(
    bundle,
    learner_specs: Sequence[LearnerSpec],
    variants: Optional[Sequence[str]] = None,
    folds: int = 3,
    seed: int = 0,
    backend: Optional[str] = None,
    parallelism: Optional[int] = None,
    shards: Optional[int] = None,
    reuse_saturation_store: bool = True,
    presaturate: bool = False,
    session: Optional[LearningSession] = None,
) -> List[VariantResult]:
    """Run every learner on every schema variant (one of the paper's tables).

    The whole sweep shares one session (the caller's or a per-call one), so
    every learner×variant cell after the first on a variant starts from
    that variant's warm instance and saturation store.
    """
    session, owns_session = _session_for(
        session, backend, parallelism, shards, reuse_saturation_store
    )
    try:
        variants = list(variants or bundle.variant_names)
        # Convert once up front (and once per *session*, not per call): the
        # converted bundle caches the re-materialized instance per variant,
        # so repeat sweeps on one session land on the same instances, warm
        # fleets, and stores.
        bundle = session.prepare_bundle(bundle)
        results: List[VariantResult] = []
        for learner_spec in learner_specs:
            for variant_name in variants:
                results.append(
                    run_variant(
                        bundle,
                        variant_name,
                        learner_spec,
                        folds,
                        seed,
                        reuse_saturation_store=reuse_saturation_store,
                        presaturate=presaturate,
                        session=session,
                    )
                )
        return results
    finally:
        if owns_session:
            session.close()


class SchemaIndependenceReport:
    """Outcome of the direct schema-independence check for one learner."""

    def __init__(
        self,
        learner: str,
        result_sizes: Dict[str, int],
        pairwise_equivalent: Dict[str, bool],
        definitions: Dict[str, HornDefinition],
    ):
        self.learner = learner
        self.result_sizes = result_sizes
        self.pairwise_equivalent = pairwise_equivalent
        self.definitions = definitions

    @property
    def is_schema_independent(self) -> bool:
        """True when the learner produced equivalent outputs on every variant pair."""
        return all(self.pairwise_equivalent.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "learner": self.learner,
            "schema_independent": self.is_schema_independent,
            "result_sizes": dict(self.result_sizes),
            "pairwise_equivalent": dict(self.pairwise_equivalent),
        }

    def __repr__(self) -> str:
        return (
            f"SchemaIndependenceReport({self.learner!r}, "
            f"independent={self.is_schema_independent})"
        )


def check_schema_independence(
    bundle,
    learner_spec: LearnerSpec,
    variants: Optional[Sequence[str]] = None,
    seed: int = 0,
    backend: Optional[str] = None,
    parallelism: Optional[int] = None,
    shards: Optional[int] = None,
    session: Optional[LearningSession] = None,
) -> SchemaIndependenceReport:
    """Learn on every variant with the full training data and compare outputs.

    The comparison is semantic: each learned definition is evaluated on its
    own variant's instance and the result relations are compared across
    variants (Definition 3.10 instantiated on the actual data).
    """
    del seed  # accepted for signature compatibility; learning is seeded by parameters
    session, owns_session = _session_for(session, backend, parallelism, shards)
    try:
        variants = list(variants or bundle.variant_names)
        bundle = session.prepare_bundle(bundle)
        definitions: Dict[str, HornDefinition] = {}
        results: Dict[str, frozenset] = {}
        for variant_name in variants:
            schema = bundle.schema(variant_name)
            instance = session.prepare(bundle.instance(variant_name))
            learner = learner_spec.build(schema)
            store = (
                session.saturation_store_for(instance, learner)
                if hasattr(learner, "saturation_store")
                else None
            )
            session.apply(learner, instance=instance, saturation_store=store)
            if session.config.presaturate:
                # Honored here like in run_variant: an explicit setting is
                # never silently ignored (warn paths live in presaturate).
                session.presaturate(learner, instance, bundle.examples)
            definition = learner.learn(instance, bundle.examples)
            definitions[variant_name] = definition
            results[variant_name] = frozenset(
                definition_results(definition, instance)
            )
    finally:
        if owns_session:
            session.close()

    pairwise: Dict[str, bool] = {}
    for i, first in enumerate(variants):
        for second in variants[i + 1 :]:
            pairwise[f"{first}|{second}"] = results[first] == results[second]

    sizes = {name: len(results[name]) for name in variants}
    return SchemaIndependenceReport(learner_spec.name, sizes, pairwise, definitions)
