"""Standard bottom-clause construction (Section 6.1).

Given a positive example ``T(a1, ..., an)`` and a database instance, the
bottom clause is the most specific clause covering the example relative to
the instance.  The classic algorithm (Muggleton's inverse entailment, as
described in the paper) starts from the example's constants, repeatedly finds
database tuples mentioning known constants, and adds one literal per tuple,
replacing constants by variables consistently.

Two stopping conditions are supported:

* ``max_depth`` — the classic per-iteration depth bound (schema *dependent*,
  Lemma 6.3);
* ``max_distinct_variables`` — Castor's stopping condition (Section 7.1),
  which is invariant under (de)composition because equivalent clauses over
  composed/decomposed schemas have the same number of distinct variables.

The builder can also produce *ground* bottom clauses (saturations), which the
coverage engine θ-subsumes candidate clauses against (Section 7.5.3).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..database.instance import DatabaseInstance
from ..obs import registry as obs_registry
from ..logic.atoms import Atom
from ..logic.clauses import HornClause
from ..logic.terms import Constant, Term, Variable
from .examples import Example


class BottomClauseConfig:
    """Tunable limits for bottom-clause construction.

    Attributes
    ----------
    max_depth:
        Maximum iteration depth (new constants found in iteration ``i`` are
        expanded in iteration ``i+1``).  ``None`` disables the depth bound.
    max_distinct_variables:
        Castor's stopping condition: stop iterating once the clause has at
        least this many distinct variables.  ``None`` disables it.
    max_literals_per_relation_per_tuple:
        Cap on how many tuples of one relation may be added for a single
        lookup constant in one iteration (the paper uses 10 for IMDb).
    max_total_literals:
        Hard cap on the body size, as a safety net for dense databases.
    """

    def __init__(
        self,
        max_depth: Optional[int] = 2,
        max_distinct_variables: Optional[int] = None,
        max_literals_per_relation_per_tuple: int = 5,
        max_total_literals: int = 100,
        theory_constant_threshold: int = 12,
    ):
        self.max_depth = max_depth
        self.max_distinct_variables = max_distinct_variables
        self.max_literals_per_relation_per_tuple = max_literals_per_relation_per_tuple
        self.max_total_literals = max_total_literals
        self.theory_constant_threshold = theory_constant_threshold


def compute_theory_constants(
    instance: DatabaseInstance, threshold: int, schema=None
) -> Set[object]:
    """Values of small-domain, non-key columns, kept as constants in clauses.

    Classic ILP systems declare such values with ``#``-mode declarations
    (``drama``, ``post_generals``, ``7``).  Without mode declarations the
    builders infer them from the data.  A column qualifies when:

    * it has at most ``threshold`` distinct values,
    * it is not key-like (more than half of the rows carrying distinct values),
    * and its attribute does not participate in any inclusion dependency —
      IND columns are identifiers used for joins, and turning identifiers into
      constants would pin clauses to individual entities.

    Values of qualifying columns stay constants during variablization, so
    learned clauses can express literals like ``genre(g, drama)`` or
    ``student(x, post_generals, 5)``.
    """
    if threshold <= 0:
        return set()
    schema = schema if schema is not None else instance.schema
    join_attributes: Set[Tuple[str, str]] = set()
    for ind in getattr(schema, "inclusion_dependencies", []):
        for attribute in ind.left_attrs:
            join_attributes.add((ind.left, attribute))
        for attribute in ind.right_attrs:
            join_attributes.add((ind.right, attribute))
    fd_lhs_attributes: Set[Tuple[str, str]] = set()
    fd_rhs_attributes: Set[Tuple[str, str]] = set()
    for fd in getattr(schema, "functional_dependencies", []):
        for attribute in fd.lhs:
            fd_lhs_attributes.add((fd.relation, attribute))
        for attribute in fd.rhs:
            fd_rhs_attributes.add((fd.relation, attribute))

    theory_constants: Set[object] = set()
    for relation in instance.relations():
        row_count = len(relation)
        if row_count == 0:
            continue
        for attribute in relation.schema.attributes:
            key = (relation.schema.name, attribute)
            # Join and key attributes are identifiers, never theory constants.
            if key in join_attributes or key in fd_lhs_attributes:
                continue
            values = relation.distinct_values(attribute)
            if not values or len(values) > threshold:
                continue
            # Near-unique columns are identifier-like unless the schema says
            # they are dependent attributes (FD right-hand sides) — the latter
            # covers small lookup tables such as genre(genreid, genre).
            if len(values) > row_count / 2 and key not in fd_rhs_attributes:
                continue
            theory_constants.update(values)
    return theory_constants


class _ConstructionState:
    """Per-example construction state for (batched) bottom-clause building.

    One state is the classic algorithm's working set — the partial body, the
    constant→variable map, the seen-tuple set, and the current frontier —
    factored out of the loop so that many examples can advance depth levels
    in lockstep while sharing one frontier lookup per level.
    """

    __slots__ = (
        "example",
        "variablize",
        "example_values",
        "variable_of",
        "head",
        "body",
        "seen_rows",
        "known_constants",
        "frontier",
        "depth",
        "join_cache",
    )

    def __init__(self, example: Example, variablize: bool):
        self.example = example
        self.variablize = variablize
        self.example_values = set(example.values)
        self.variable_of: Dict[object, Variable] = {}
        self.head: Optional[Atom] = None
        self.body: List[Atom] = []
        self.seen_rows: Set[Tuple[str, Tuple[object, ...]]] = set()
        self.known_constants: Set[object] = set(example.values)
        self.frontier: Set[object] = set(example.values)
        self.depth = 0
        # Shared by every state of one batch: pure-lookup results (Castor's
        # IND-chase joins) memoized for the duration of the construction
        # call — entities appearing in many examples' saturations are
        # fetched once per generation instead of once per example.
        self.join_cache: Optional[Dict[object, List[Tuple[object, ...]]]] = None


class BottomClauseBuilder:
    """Construct bottom clauses / saturations relative to a database instance.

    Frontier expansion — "which tuples mention any of this depth level's new
    constants" — goes through the backend's saturation capability when the
    instance has one (``use_compiled_lookups=None``, the default): one
    set-at-a-time :meth:`~repro.database.instance.DatabaseInstance.neighbors_of_batch`
    call per depth level, the stored-procedure analogue of Section 7.5.2.
    ``use_compiled_lookups=False`` forces the per-constant client path (one
    ``tuples_containing`` round-trip per frontier value), which Table 13
    compares against.  The constructed clauses are identical either way.

    :meth:`build_many` / :meth:`build_ground_many` construct a whole example
    generation **level-synchronously**: all examples advance one depth at a
    time and each level issues ONE frontier lookup for the union of every
    example's frontier, so the per-statement cost is amortized across the
    generation.  Per-example construction order is untouched (each state
    consumes its own frontier's neighbors in its own sorted order), so the
    clauses are byte-identical to one-at-a-time construction.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        config: Optional[BottomClauseConfig] = None,
        use_compiled_lookups: Optional[bool] = None,
        theory_constants: Optional[Set[object]] = None,
    ):
        self.instance = instance
        self.config = config or BottomClauseConfig()
        if use_compiled_lookups is None:
            use_compiled_lookups = getattr(
                instance.backend, "supports_saturation_queries", False
            )
        self.use_compiled_lookups = bool(use_compiled_lookups)
        # ``theory_constants`` skips inference entirely — shard workers pass
        # the coordinator's pinned set instead of re-scanning the database.
        if theory_constants is not None:
            self.theory_constants = set(theory_constants)
        else:
            self.theory_constants = compute_theory_constants(
                instance,
                getattr(self.config, "theory_constant_threshold", 12),
                self._theory_schema(),
            )

    def _theory_schema(self):
        """Schema handed to theory-constant inference (Castor passes its
        working schema; the standard builder uses the instance's)."""
        return None

    def saturation_spec(self) -> Optional[Tuple[object, ...]]:
        """Picklable recipe a shard worker rebuilds this builder from.

        Pins everything result-relevant: the construction config AND this
        builder's theory constants — shipping the constants (rather than
        letting workers re-infer them from their copy of the data) keeps
        worker-built clauses identical to this builder's even when the
        instance mutated after the builder was constructed.  ``None`` for
        subclasses workers cannot rebuild.
        """
        if type(self) is not BottomClauseBuilder:
            return None
        return ("bottom", self.config, frozenset(self.theory_constants))

    def _frontier_neighbors(
        self, constants: Sequence[object]
    ) -> Dict[object, List[Tuple[str, Tuple[object, ...]]]]:
        """Sorted ``constant -> [(relation, tuple)]`` for one depth level.

        The per-constant lists are sorted exactly as the construction loop
        consumes them, so the clause is identical whichever lookup path
        produced the neighbors.
        """
        if self.use_compiled_lookups:
            neighbors = self.instance.neighbors_of_batch(constants)
        else:
            neighbors = {
                constant: self.instance.tuples_containing(constant)
                for constant in constants
            }
        return {
            constant: sorted(
                found, key=lambda pair: (pair[0], tuple(map(str, pair[1])))
            )
            for constant, found in neighbors.items()
        }

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def build(self, example: Example) -> HornClause:
        """Variablized bottom clause for ``example`` (used as the search seed)."""
        return self._construct_many([example], variablize=True)[0]

    def build_ground(self, example: Example) -> HornClause:
        """Ground bottom clause (saturation) for ``example`` (used for coverage)."""
        return self._construct_many([example], variablize=False)[0]

    def build_many(self, examples: Sequence[Example]) -> List[HornClause]:
        """Variablized bottom clauses for a whole generation, in input order."""
        return self._construct_many(list(examples), variablize=True)

    def build_ground_many(self, examples: Sequence[Example]) -> List[HornClause]:
        """Ground saturations for a whole generation, in input order."""
        return self._construct_many(list(examples), variablize=False)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _term_for(self, state: _ConstructionState, value: object) -> Term:
        # Example values are always variablized so the clause generalizes
        # over the target's arguments; other theory constants stay ground.
        if not state.variablize or (
            value in self.theory_constants and value not in state.example_values
        ):
            return Constant(value)
        existing = state.variable_of.get(value)
        if existing is None:
            existing = Variable(f"v{len(state.variable_of)}")
            state.variable_of[value] = existing
        return existing

    def _state_active(self, state: _ConstructionState) -> bool:
        if not state.frontier:
            return False
        if (
            self.config.max_depth is not None
            and state.depth >= self.config.max_depth
        ):
            return False
        # A full body can never admit another literal; dropping the state
        # here is output-identical and keeps its (possibly large) leftover
        # frontier out of the next level's batched lookup.
        if len(state.body) >= self.config.max_total_literals:
            return False
        return not self._reached_variable_budget(
            state.variable_of, state.known_constants, state.variablize
        )

    def _add_neighbor(
        self,
        state: _ConstructionState,
        relation_name: str,
        row: Tuple[object, ...],
        next_frontier: Set[object],
    ) -> None:
        """Admit one tuple: literal, bookkeeping, frontier growth.

        Castor overrides this to additionally chase the tuple's inclusion
        class (Section 7.1) through the same indexed lookups.
        """
        state.seen_rows.add((relation_name, row))
        state.body.append(
            Atom(relation_name, [self._term_for(state, v) for v in row])
        )
        for value in row:
            if value not in state.known_constants:
                state.known_constants.add(value)
                next_frontier.add(value)

    def _expand_state(
        self,
        state: _ConstructionState,
        neighbors: Dict[object, List[Tuple[str, Tuple[object, ...]]]],
    ) -> None:
        """Advance one example one depth level using pre-fetched neighbors."""
        next_frontier: Set[object] = set()
        for constant in sorted(state.frontier, key=str):
            per_relation_counts: Dict[str, int] = {}
            for relation_name, row in neighbors.get(constant, ()):
                if len(state.body) >= self.config.max_total_literals:
                    break
                if (relation_name, row) in state.seen_rows:
                    continue
                count = per_relation_counts.get(relation_name, 0)
                if count >= self.config.max_literals_per_relation_per_tuple:
                    continue
                per_relation_counts[relation_name] = count + 1
                self._add_neighbor(state, relation_name, row, next_frontier)
            if len(state.body) >= self.config.max_total_literals:
                break
        state.frontier = next_frontier
        state.depth += 1

    def _construct_many(
        self, examples: Sequence[Example], variablize: bool
    ) -> List[HornClause]:
        states = [_ConstructionState(example, variablize) for example in examples]
        join_cache: Dict[object, List[Tuple[object, ...]]] = {}
        for state in states:
            state.join_cache = join_cache
            state.head = Atom(
                state.example.target,
                [self._term_for(state, v) for v in state.example.values],
            )
        # Batch-scoped: a constant reaching several examples' frontiers (or
        # the same frontier at different depths) is fetched and sorted once
        # per generation, like the chase results in ``join_cache``.
        neighbor_cache: Dict[object, List[Tuple[str, Tuple[object, ...]]]] = {}
        while True:
            active = [state for state in states if self._state_active(state)]
            if not active:
                break
            # ONE set-at-a-time lookup expands this depth level for every
            # example still running — the frontier union shares the
            # statement cost across the whole generation.
            missing = sorted(
                {
                    value
                    for state in active
                    for value in state.frontier
                    if value not in neighbor_cache
                },
                key=str,
            )
            if missing:
                neighbor_cache.update(self._frontier_neighbors(missing))
            for state in active:
                self._expand_state(state, neighbor_cache)
        return [HornClause(state.head, state.body) for state in states]

    def _reached_variable_budget(
        self,
        variable_of: Dict[object, Variable],
        known_constants: Set[object],
        variablize: bool,
    ) -> bool:
        budget = self.config.max_distinct_variables
        if budget is None:
            return False
        count = len(variable_of) if variablize else len(known_constants)
        return count >= budget


class SaturationBatch:
    """One generation of examples to saturate against a shared instance.

    The saturation analogue of
    :class:`~repro.learning.coverage.CoverageBatch`: a value object callers
    assemble before handing the whole generation to
    :class:`BatchSaturationEngine` in one call.
    """

    __slots__ = ("examples", "variablize")

    def __init__(self, examples: Sequence[Example], variablize: bool = False):
        self.examples: List[Example] = list(examples)
        self.variablize = bool(variablize)

    def __len__(self) -> int:
        return len(self.examples)

    def __repr__(self) -> str:
        kind = "bottom clauses" if self.variablize else "saturations"
        return f"SaturationBatch({len(self.examples)} examples, {kind})"


#: Per-engine label for registry series: each BatchSaturationEngine gets its
#: own ``saturation.sharded_batches`` series so a fresh engine reads zero.
_SATURATION_ENGINE_SEQ = itertools.count(1)


class BatchSaturationEngine:
    """Materialize bottom clauses / saturations for whole example sets.

    Wraps a builder (:class:`BottomClauseBuilder` or Castor's IND-aware
    subclass) and answers batch requests:

    * when the builder's instance lives on a backend exposing a sharded
      evaluation service (``"sqlite-sharded"``) and the builder publishes a
      ``saturation_spec``, the batch is fanned out across the shard workers
      along the example axis (the same sticky assignment coverage uses, so
      each example is saturated on the worker that owns it) and the
      constructed clauses are shipped back in input order;
    * otherwise the builder runs locally, optionally across a thread pool.

    Results are identical for every route and ``parallelism`` value —
    construction order inside one example's clause never depends on either.
    """

    def __init__(self, builder: BottomClauseBuilder, parallelism: int = 1):
        self.builder = builder
        self.parallelism = max(1, int(parallelism))
        # Registry-backed counter (per-engine series so a fresh engine reads
        # zero); the plain-attribute read below is the stable public surface.
        self._c_sharded_batches = obs_registry().counter(
            "saturation.sharded_batches", engine=next(_SATURATION_ENGINE_SEQ)
        )

    @property
    def sharded_batches(self) -> int:
        return self._c_sharded_batches.value

    def _sharded_batch(
        self, examples: Sequence[Example], variablize: bool
    ) -> Optional[List[HornClause]]:
        """Route through the instance backend's evaluation service, if any."""
        if not getattr(self.builder, "use_compiled_lookups", True):
            # A builder explicitly pinned to the per-value Python baseline
            # (Table 13's client path) must stay local — workers would
            # rebuild it with compiled lookups and silently override the
            # knob being measured.
            return None
        spec_fn = getattr(self.builder, "saturation_spec", None)
        if spec_fn is None:
            return None
        backend = getattr(self.builder.instance, "backend", None)
        service_fn = getattr(backend, "coverage_service", None)
        if service_fn is None:
            return None
        spec = spec_fn()
        if spec is None:
            return None
        clauses = service_fn().materialize_saturations(
            spec, examples, variablize=variablize, parallelism=self.parallelism
        )
        self._c_sharded_batches.inc()
        return clauses

    def build_batch(
        self, examples: Sequence[Example], variablize: bool = False
    ) -> List[HornClause]:
        """One clause per example, in input order.

        Locally the builder constructs the generation level-synchronously
        (one frontier lookup per depth level for all examples); on the
        per-value lookup path ``parallelism > 1`` additionally chunks the
        generation round-robin across a thread pool, each chunk still
        level-synchronized internally.
        """
        example_list = list(examples)
        if not example_list:
            return []
        if len(example_list) > 1:
            sharded = self._sharded_batch(example_list, variablize)
            if sharded is not None:
                return sharded
        build_many = (
            self.builder.build_many if variablize else self.builder.build_ground_many
        )
        # Thread chunking only pays on the per-value lookup path.  With
        # compiled lookups one level-synchronized batch is already optimal:
        # chunking would multiply the per-level statements (one per chunk,
        # serialized on the backend's frontier lock) and split the
        # batch-scoped join cache.
        if (
            self.parallelism > 1
            and len(example_list) > 1
            and not getattr(self.builder, "use_compiled_lookups", False)
        ):
            from concurrent.futures import ThreadPoolExecutor

            workers = min(self.parallelism, len(example_list))
            chunks: List[List[int]] = [[] for _ in range(workers)]
            for index in range(len(example_list)):
                chunks[index % workers].append(index)
            results: List[Optional[HornClause]] = [None] * len(example_list)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for indices, clauses in zip(
                    chunks,
                    pool.map(
                        lambda idx: build_many([example_list[i] for i in idx]),
                        chunks,
                    ),
                ):
                    for position, clause in zip(indices, clauses):
                        results[position] = clause
            return results
        return build_many(example_list)

    def build_ground_batch(self, examples: Sequence[Example]) -> List[HornClause]:
        """Ground saturations for a whole example generation, in input order."""
        return self.build_batch(examples, variablize=False)

    def run(self, batch: SaturationBatch) -> List[HornClause]:
        """Evaluate a pre-assembled :class:`SaturationBatch`."""
        return self.build_batch(batch.examples, variablize=batch.variablize)

    def apply_delta(
        self,
        store,
        delta,
        examples: Sequence[Example] = (),
    ) -> List[Example]:
        """Retract-and-repair a saturation store after a data delta.

        Drops every stored saturation whose footprint (head values plus
        ground-body constants) intersects the delta's touched values — the
        only saturations whose frontier expansion the delta can reach — and
        rebuilds the dropped ones found in ``examples`` through the normal
        batch construction path.  Because untouched saturations are provably
        unaffected and touched ones are reconstructed from scratch against
        the updated instance, the store ends byte-identical to a cold
        rebuild.  Returns the examples that were rebuilt.
        """
        touched = delta.touched_values()
        if not touched:
            return []
        dropped = set(store.invalidate_touching(touched))
        if not dropped:
            return []
        rebuilt = [
            example
            for example in dict.fromkeys(examples)
            if store.stored_key(example.target, example.values) in dropped
        ]
        if rebuilt:
            self.materialize_into(store, rebuilt)
        return rebuilt

    def materialize_into(
        self,
        store,
        examples: Sequence[Example],
        saturation_fn=None,
    ) -> Dict[Example, int]:
        """Saturate a generation and feed a
        :class:`~repro.database.sqlite_backend.SaturationStore` — one batch
        call, no per-example Python construction loop.  Returns the store id
        per example; examples the store rejects (unstorable values) are
        silently skipped, mirroring the coverage engine's fallback.

        ``saturation_fn`` lets a caller with an already-warm saturation
        cache (the coverage engine) supply the clauses instead of
        rebuilding them.
        """
        from ..database.sqlite_backend import BackendValueError

        example_list = list(dict.fromkeys(examples))
        if saturation_fn is None:
            clauses = self.build_ground_batch(example_list)
        else:
            clauses = [saturation_fn(example) for example in example_list]
        ids: Dict[Example, int] = {}
        for example, clause in zip(example_list, clauses):
            try:
                ids[example] = store.add_example(
                    example.target, example.values, clause.body
                )
            except BackendValueError:
                continue
        return ids


def build_bottom_clause(
    instance: DatabaseInstance,
    example: Example,
    config: Optional[BottomClauseConfig] = None,
) -> HornClause:
    """Convenience wrapper: variablized bottom clause for one example."""
    return BottomClauseBuilder(instance, config).build(example)


def build_saturation(
    instance: DatabaseInstance,
    example: Example,
    config: Optional[BottomClauseConfig] = None,
) -> HornClause:
    """Convenience wrapper: ground bottom clause (saturation) for one example."""
    return BottomClauseBuilder(instance, config).build_ground(example)
