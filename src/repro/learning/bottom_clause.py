"""Standard bottom-clause construction (Section 6.1).

Given a positive example ``T(a1, ..., an)`` and a database instance, the
bottom clause is the most specific clause covering the example relative to
the instance.  The classic algorithm (Muggleton's inverse entailment, as
described in the paper) starts from the example's constants, repeatedly finds
database tuples mentioning known constants, and adds one literal per tuple,
replacing constants by variables consistently.

Two stopping conditions are supported:

* ``max_depth`` — the classic per-iteration depth bound (schema *dependent*,
  Lemma 6.3);
* ``max_distinct_variables`` — Castor's stopping condition (Section 7.1),
  which is invariant under (de)composition because equivalent clauses over
  composed/decomposed schemas have the same number of distinct variables.

The builder can also produce *ground* bottom clauses (saturations), which the
coverage engine θ-subsumes candidate clauses against (Section 7.5.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..database.instance import DatabaseInstance
from ..logic.atoms import Atom
from ..logic.clauses import HornClause
from ..logic.terms import Constant, Term, Variable
from .examples import Example


class BottomClauseConfig:
    """Tunable limits for bottom-clause construction.

    Attributes
    ----------
    max_depth:
        Maximum iteration depth (new constants found in iteration ``i`` are
        expanded in iteration ``i+1``).  ``None`` disables the depth bound.
    max_distinct_variables:
        Castor's stopping condition: stop iterating once the clause has at
        least this many distinct variables.  ``None`` disables it.
    max_literals_per_relation_per_tuple:
        Cap on how many tuples of one relation may be added for a single
        lookup constant in one iteration (the paper uses 10 for IMDb).
    max_total_literals:
        Hard cap on the body size, as a safety net for dense databases.
    """

    def __init__(
        self,
        max_depth: Optional[int] = 2,
        max_distinct_variables: Optional[int] = None,
        max_literals_per_relation_per_tuple: int = 5,
        max_total_literals: int = 100,
        theory_constant_threshold: int = 12,
    ):
        self.max_depth = max_depth
        self.max_distinct_variables = max_distinct_variables
        self.max_literals_per_relation_per_tuple = max_literals_per_relation_per_tuple
        self.max_total_literals = max_total_literals
        self.theory_constant_threshold = theory_constant_threshold


def compute_theory_constants(
    instance: DatabaseInstance, threshold: int, schema=None
) -> Set[object]:
    """Values of small-domain, non-key columns, kept as constants in clauses.

    Classic ILP systems declare such values with ``#``-mode declarations
    (``drama``, ``post_generals``, ``7``).  Without mode declarations the
    builders infer them from the data.  A column qualifies when:

    * it has at most ``threshold`` distinct values,
    * it is not key-like (more than half of the rows carrying distinct values),
    * and its attribute does not participate in any inclusion dependency —
      IND columns are identifiers used for joins, and turning identifiers into
      constants would pin clauses to individual entities.

    Values of qualifying columns stay constants during variablization, so
    learned clauses can express literals like ``genre(g, drama)`` or
    ``student(x, post_generals, 5)``.
    """
    if threshold <= 0:
        return set()
    schema = schema if schema is not None else instance.schema
    join_attributes: Set[Tuple[str, str]] = set()
    for ind in getattr(schema, "inclusion_dependencies", []):
        for attribute in ind.left_attrs:
            join_attributes.add((ind.left, attribute))
        for attribute in ind.right_attrs:
            join_attributes.add((ind.right, attribute))
    fd_lhs_attributes: Set[Tuple[str, str]] = set()
    fd_rhs_attributes: Set[Tuple[str, str]] = set()
    for fd in getattr(schema, "functional_dependencies", []):
        for attribute in fd.lhs:
            fd_lhs_attributes.add((fd.relation, attribute))
        for attribute in fd.rhs:
            fd_rhs_attributes.add((fd.relation, attribute))

    theory_constants: Set[object] = set()
    for relation in instance.relations():
        row_count = len(relation)
        if row_count == 0:
            continue
        for attribute in relation.schema.attributes:
            key = (relation.schema.name, attribute)
            # Join and key attributes are identifiers, never theory constants.
            if key in join_attributes or key in fd_lhs_attributes:
                continue
            values = relation.distinct_values(attribute)
            if not values or len(values) > threshold:
                continue
            # Near-unique columns are identifier-like unless the schema says
            # they are dependent attributes (FD right-hand sides) — the latter
            # covers small lookup tables such as genre(genreid, genre).
            if len(values) > row_count / 2 and key not in fd_rhs_attributes:
                continue
            theory_constants.update(values)
    return theory_constants


class BottomClauseBuilder:
    """Construct bottom clauses / saturations relative to a database instance."""

    def __init__(self, instance: DatabaseInstance, config: Optional[BottomClauseConfig] = None):
        self.instance = instance
        self.config = config or BottomClauseConfig()
        self.theory_constants = compute_theory_constants(
            instance, getattr(self.config, "theory_constant_threshold", 12)
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def build(self, example: Example) -> HornClause:
        """Variablized bottom clause for ``example`` (used as the search seed)."""
        return self._construct(example, variablize=True)

    def build_ground(self, example: Example) -> HornClause:
        """Ground bottom clause (saturation) for ``example`` (used for coverage)."""
        return self._construct(example, variablize=False)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _construct(self, example: Example, variablize: bool) -> HornClause:
        variable_of: Dict[object, Variable] = {}
        example_values = set(example.values)

        def term_for(value: object) -> Term:
            # Example values are always variablized so the clause generalizes
            # over the target's arguments; other theory constants stay ground.
            if not variablize or (
                value in self.theory_constants and value not in example_values
            ):
                return Constant(value)
            existing = variable_of.get(value)
            if existing is None:
                existing = Variable(f"v{len(variable_of)}")
                variable_of[value] = existing
            return existing

        head = Atom(example.target, [term_for(v) for v in example.values])
        body: List[Atom] = []
        seen_rows: Set[Tuple[str, Tuple[object, ...]]] = set()
        known_constants: Set[object] = set(example.values)
        frontier: Set[object] = set(example.values)
        depth = 0

        while frontier:
            if self.config.max_depth is not None and depth >= self.config.max_depth:
                break
            if self._reached_variable_budget(variable_of, known_constants, variablize):
                break
            next_frontier: Set[object] = set()
            for constant in sorted(frontier, key=str):
                per_relation_counts: Dict[str, int] = {}
                for relation_name, row in sorted(
                    self.instance.tuples_containing(constant),
                    key=lambda pair: (pair[0], tuple(map(str, pair[1]))),
                ):
                    if len(body) >= self.config.max_total_literals:
                        break
                    key = (relation_name, row)
                    if key in seen_rows:
                        continue
                    count = per_relation_counts.get(relation_name, 0)
                    if count >= self.config.max_literals_per_relation_per_tuple:
                        continue
                    per_relation_counts[relation_name] = count + 1
                    seen_rows.add(key)
                    body.append(Atom(relation_name, [term_for(v) for v in row]))
                    for value in row:
                        if value not in known_constants:
                            known_constants.add(value)
                            next_frontier.add(value)
                if len(body) >= self.config.max_total_literals:
                    break
            frontier = next_frontier
            depth += 1

        return HornClause(head, body)

    def _reached_variable_budget(
        self,
        variable_of: Dict[object, Variable],
        known_constants: Set[object],
        variablize: bool,
    ) -> bool:
        budget = self.config.max_distinct_variables
        if budget is None:
            return False
        count = len(variable_of) if variablize else len(known_constants)
        return count >= budget


def build_bottom_clause(
    instance: DatabaseInstance,
    example: Example,
    config: Optional[BottomClauseConfig] = None,
) -> HornClause:
    """Convenience wrapper: variablized bottom clause for one example."""
    return BottomClauseBuilder(instance, config).build(example)


def build_saturation(
    instance: DatabaseInstance,
    example: Example,
    config: Optional[BottomClauseConfig] = None,
) -> HornClause:
    """Convenience wrapper: ground bottom clause (saturation) for one example."""
    return BottomClauseBuilder(instance, config).build_ground(example)
