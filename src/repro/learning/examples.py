"""Training examples, splits, and cross-validation.

Examples are ground tuples of the target relation (Definition 3.1).  The
:class:`ExampleSet` keeps positives and negatives apart, supports stratified
train/test splitting and k-fold cross-validation, and can sample negatives
under the closed-world assumption the way the paper does for UW-CSE and IMDb
("generate negatives by the closed-world assumption, then sample to obtain
twice as many negatives as positives").
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..database.instance import DatabaseInstance
from ..logic.atoms import Atom
from ..logic.terms import Constant


class Example:
    """A labeled ground tuple of the target relation."""

    __slots__ = ("target", "values", "positive")

    def __init__(self, target: str, values: Sequence[object], positive: bool):
        self.target = str(target)
        self.values: Tuple[object, ...] = tuple(values)
        self.positive = bool(positive)

    def as_atom(self) -> Atom:
        """The example as a ground atom ``target(values...)``."""
        return Atom(self.target, [Constant(v) for v in self.values])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Example)
            and other.target == self.target
            and other.values == self.values
            and other.positive == self.positive
        )

    def __hash__(self) -> int:
        return hash((self.target, self.values, self.positive))

    def __repr__(self) -> str:
        sign = "+" if self.positive else "-"
        return f"Example({sign}{self.target}{self.values!r})"


class ExampleSet:
    """Positive and negative examples of one target relation."""

    def __init__(
        self,
        target: str,
        positives: Iterable[Sequence[object]] = (),
        negatives: Iterable[Sequence[object]] = (),
    ):
        self.target = str(target)
        self.positives: List[Example] = [
            Example(target, values, True) for values in positives
        ]
        self.negatives: List[Example] = [
            Example(target, values, False) for values in negatives
        ]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.positives) + len(self.negatives)

    def all_examples(self) -> List[Example]:
        return [*self.positives, *self.negatives]

    def positive_tuples(self) -> Set[Tuple[object, ...]]:
        return {e.values for e in self.positives}

    def negative_tuples(self) -> Set[Tuple[object, ...]]:
        return {e.values for e in self.negatives}

    def is_empty(self) -> bool:
        return not self.positives and not self.negatives

    # ------------------------------------------------------------------ #
    # Splitting
    # ------------------------------------------------------------------ #
    def shuffled(self, seed: int = 0) -> "ExampleSet":
        """Return a copy with positives and negatives independently shuffled."""
        rng = random.Random(seed)
        positives = [e.values for e in self.positives]
        negatives = [e.values for e in self.negatives]
        rng.shuffle(positives)
        rng.shuffle(negatives)
        return ExampleSet(self.target, positives, negatives)

    def train_test_split(
        self, test_fraction: float = 0.3, seed: int = 0
    ) -> Tuple["ExampleSet", "ExampleSet"]:
        """Stratified split into (train, test)."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        shuffled = self.shuffled(seed)
        cut_pos = max(1, int(len(shuffled.positives) * (1 - test_fraction)))
        cut_neg = max(1, int(len(shuffled.negatives) * (1 - test_fraction)))
        train = ExampleSet(
            self.target,
            [e.values for e in shuffled.positives[:cut_pos]],
            [e.values for e in shuffled.negatives[:cut_neg]],
        )
        test = ExampleSet(
            self.target,
            [e.values for e in shuffled.positives[cut_pos:]],
            [e.values for e in shuffled.negatives[cut_neg:]],
        )
        return train, test

    def k_folds(self, k: int, seed: int = 0) -> Iterator[Tuple["ExampleSet", "ExampleSet"]]:
        """Yield ``k`` (train, test) pairs for stratified cross-validation.

        The paper uses 5-fold CV for UW-CSE and 10-fold for HIV/IMDb.
        """
        if k < 2:
            raise ValueError("k must be at least 2")
        shuffled = self.shuffled(seed)
        positive_folds = _partition(shuffled.positives, k)
        negative_folds = _partition(shuffled.negatives, k)
        for fold in range(k):
            test_pos = positive_folds[fold]
            test_neg = negative_folds[fold]
            train_pos = list(
                itertools.chain.from_iterable(
                    positive_folds[i] for i in range(k) if i != fold
                )
            )
            train_neg = list(
                itertools.chain.from_iterable(
                    negative_folds[i] for i in range(k) if i != fold
                )
            )
            yield (
                ExampleSet(
                    self.target,
                    [e.values for e in train_pos],
                    [e.values for e in train_neg],
                ),
                ExampleSet(
                    self.target,
                    [e.values for e in test_pos],
                    [e.values for e in test_neg],
                ),
            )

    def subsample(
        self, max_positives: Optional[int] = None, max_negatives: Optional[int] = None, seed: int = 0
    ) -> "ExampleSet":
        """Randomly subsample positives/negatives down to the given caps."""
        shuffled = self.shuffled(seed)
        positives = shuffled.positives[: max_positives or len(shuffled.positives)]
        negatives = shuffled.negatives[: max_negatives or len(shuffled.negatives)]
        return ExampleSet(
            self.target, [e.values for e in positives], [e.values for e in negatives]
        )

    def __repr__(self) -> str:
        return (
            f"ExampleSet({self.target!r}, +{len(self.positives)}, -{len(self.negatives)})"
        )


def _partition(items: Sequence[Example], k: int) -> List[List[Example]]:
    """Deal items round-robin into k folds (keeps folds balanced)."""
    folds: List[List[Example]] = [[] for _ in range(k)]
    for index, item in enumerate(items):
        folds[index % k].append(item)
    return folds


def sample_closed_world_negatives(
    positives: Iterable[Tuple[object, ...]],
    candidate_values: Sequence[Sequence[object]],
    ratio: float = 2.0,
    seed: int = 0,
    max_attempts_factor: int = 50,
) -> List[Tuple[object, ...]]:
    """Sample negative tuples under the closed-world assumption.

    ``candidate_values[i]`` is the domain of the target's i-th argument;
    random combinations not in the positive set become negatives.  The paper
    samples "twice as many negatives as positives" (``ratio=2``).
    """
    rng = random.Random(seed)
    positive_set = set(positives)
    wanted = int(len(positive_set) * ratio)
    negatives: List[Tuple[object, ...]] = []
    seen: Set[Tuple[object, ...]] = set()
    attempts = 0
    max_attempts = max(1, wanted * max_attempts_factor)
    while len(negatives) < wanted and attempts < max_attempts:
        attempts += 1
        candidate = tuple(rng.choice(list(domain)) for domain in candidate_values)
        if candidate in positive_set or candidate in seen:
            continue
        seen.add(candidate)
        negatives.append(candidate)
    return negatives


def examples_from_instance(
    instance: DatabaseInstance, relation: str, positive: bool = True
) -> List[Tuple[object, ...]]:
    """Extract the tuples of a stored relation as example value tuples."""
    return [tuple(row) for row in instance.relation(relation).rows]
