"""Evaluation metrics and cross-validation driver (Section 9.1.3).

Precision = true positives / all examples covered by the definition.
Recall    = true positives / all positive examples in the test data.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..database.instance import DatabaseInstance
from ..logic.clauses import HornDefinition
from .coverage import QueryCoverageEngine
from .examples import Example, ExampleSet


class EvaluationResult:
    """Precision/recall/F1 of a learned definition on a test set."""

    __slots__ = (
        "precision",
        "recall",
        "true_positives",
        "false_positives",
        "false_negatives",
        "covered_total",
    )

    def __init__(
        self,
        true_positives: int,
        false_positives: int,
        false_negatives: int,
    ):
        self.true_positives = true_positives
        self.false_positives = false_positives
        self.false_negatives = false_negatives
        self.covered_total = true_positives + false_positives
        self.precision = (
            true_positives / self.covered_total if self.covered_total else 0.0
        )
        positives_total = true_positives + false_negatives
        self.recall = true_positives / positives_total if positives_total else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def as_dict(self) -> Dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
        }

    def __repr__(self) -> str:
        return (
            f"EvaluationResult(precision={self.precision:.3f}, recall={self.recall:.3f})"
        )


def evaluate_definition(
    definition: HornDefinition,
    instance: DatabaseInstance,
    test_examples: ExampleSet,
    engine: Optional[object] = None,
) -> EvaluationResult:
    """Compute precision/recall of a definition against a test example set.

    Coverage of test examples is decided extensionally: a test example is
    covered when some clause of the definition derives it from the database.
    An empty definition covers nothing (precision 0, recall 0).
    """
    engine = engine or QueryCoverageEngine(instance)
    clauses = list(definition)
    batch_masks = getattr(engine, "covered_masks_batch", None)
    if clauses and batch_masks is not None:
        # Batched path: one masks call per example list; a definition covers
        # an example when ANY clause does, which is the OR of the per-clause
        # positional bitmasks — counting is a bit_count(), not a nested
        # any()-over-clauses Python loop per example.
        def covered_count(examples: Sequence[Example]) -> int:
            if not examples:
                return 0
            union = 0
            for mask in batch_masks(clauses, examples):
                union |= mask
            return union.bit_count()

        true_positives = covered_count(test_examples.positives)
        false_negatives = len(test_examples.positives) - true_positives
        false_positives = covered_count(test_examples.negatives)
        return EvaluationResult(true_positives, false_positives, false_negatives)
    true_positives = 0
    false_negatives = 0
    for example in test_examples.positives:
        if _definition_covers(definition, example, engine):
            true_positives += 1
        else:
            false_negatives += 1
    false_positives = 0
    for example in test_examples.negatives:
        if _definition_covers(definition, example, engine):
            false_positives += 1
    return EvaluationResult(true_positives, false_positives, false_negatives)


def _definition_covers(definition: HornDefinition, example: Example, engine: object) -> bool:
    return any(engine.covers(clause, example) for clause in definition)


class FoldOutcome:
    """Metrics plus timing for one cross-validation fold."""

    __slots__ = ("evaluation", "definition", "learn_seconds")

    def __init__(
        self, evaluation: EvaluationResult, definition: HornDefinition, learn_seconds: float
    ):
        self.evaluation = evaluation
        self.definition = definition
        self.learn_seconds = learn_seconds


class CrossValidationReport:
    """Averaged metrics across folds (what the paper's tables report)."""

    def __init__(self, outcomes: Sequence[FoldOutcome]):
        self.outcomes = list(outcomes)

    @property
    def precision(self) -> float:
        return statistics.fmean(o.evaluation.precision for o in self.outcomes)

    @property
    def recall(self) -> float:
        return statistics.fmean(o.evaluation.recall for o in self.outcomes)

    @property
    def f1(self) -> float:
        return statistics.fmean(o.evaluation.f1 for o in self.outcomes)

    @property
    def mean_learn_seconds(self) -> float:
        return statistics.fmean(o.learn_seconds for o in self.outcomes)

    @property
    def total_learn_seconds(self) -> float:
        return sum(o.learn_seconds for o in self.outcomes)

    def as_dict(self) -> Dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "time_seconds": self.mean_learn_seconds,
            "folds": len(self.outcomes),
        }

    def __repr__(self) -> str:
        return (
            f"CrossValidationReport(precision={self.precision:.3f}, "
            f"recall={self.recall:.3f}, folds={len(self.outcomes)})"
        )


def cross_validate(
    learner_factory: Callable[[], object],
    instance: DatabaseInstance,
    examples: ExampleSet,
    folds: int = 5,
    seed: int = 0,
) -> CrossValidationReport:
    """k-fold cross-validation of a learner on one database instance.

    ``learner_factory`` builds a fresh learner per fold; a learner exposes
    ``learn(instance, example_set) -> HornDefinition``.
    """
    outcomes: List[FoldOutcome] = []
    for train, test in examples.k_folds(folds, seed=seed):
        learner = learner_factory()
        start = time.perf_counter()
        definition = learner.learn(instance, train)
        elapsed = time.perf_counter() - start
        evaluation = evaluate_definition(definition, instance, test)
        outcomes.append(FoldOutcome(evaluation, definition, elapsed))
    return CrossValidationReport(outcomes)
