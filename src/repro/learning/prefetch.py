"""Phase overlap: prefetch saturation materialization on a worker thread.

The Castor/ProGolem ``LearnClause`` used to run strictly saturate → seed →
score: the whole generation's saturations (and, on compiled engines, their
:class:`~repro.database.sqlite_backend.SaturationStore` rows) were built
before any search work started, and whatever the batch prepare left undone
stalled the first scoring call.  :class:`SaturationPrefetcher` removes that
barrier — :meth:`~repro.learning.coverage.SubsumptionCoverageEngine.materialize`
runs on a background thread (reusing the engine's
:class:`~repro.learning.bottom_clause.BatchSaturationEngine`, i.e. the
worker fleet on sharded backends) while the caller builds the seed clause,
and the learner joins under a ``learn.prefetch`` span before the beam loop
touches coverage.

Materialization is idempotent and deterministic, so overlapping it changes
wall-clock time only, never results.  Callers must gate on the backend's
``supports_concurrent_reads`` capability: the prefetch thread reads the
instance concurrently with the caller, which the single-connection
``sqlite`` backend does not tolerate (memory / pooled / sharded backends
do).
"""

from __future__ import annotations

import contextvars
import threading
from typing import Optional, Sequence

from .examples import Example


def backend_supports_prefetch(instance) -> bool:
    """True when ``instance``'s backend tolerates concurrent reads."""
    return bool(
        getattr(getattr(instance, "backend", None), "supports_concurrent_reads", False)
    )


class SaturationPrefetcher:
    """Run ``coverage.materialize(examples)`` on a background thread.

    ``start()`` kicks the materialization off; ``wait()`` joins it and — if
    the background run failed for any reason — falls back to materializing
    synchronously on the calling thread (the method is idempotent, so work
    the thread completed before failing is not repeated).  The prefetcher is
    single-use: one ``start()``, one ``wait()``.
    """

    def __init__(self, coverage, examples: Sequence[Example]):
        self.coverage = coverage
        self.examples = list(examples)
        self.error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "SaturationPrefetcher":
        # Run inside a copy of the caller's context so tracing spans (and any
        # other contextvar state) emitted by the background materialization
        # stay nested under the active learn span instead of starting a
        # fresh trace — threads do not inherit contextvars on their own.
        context = contextvars.copy_context()
        thread = threading.Thread(
            target=lambda: context.run(self._run),
            name="saturation-prefetch",
            daemon=True,
        )
        self._thread = thread
        thread.start()
        return self

    def _run(self) -> None:
        try:
            self.coverage.materialize(self.examples)
        except BaseException as exc:  # noqa: BLE001 - reported via wait()
            self.error = exc

    def wait(self) -> None:
        """Block until materialization is complete (retrying inline on failure)."""
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None
        if self.error is not None:
            # The engine's materialize is idempotent; a retry on the caller's
            # thread either completes the remainder or raises where the
            # caller can see it.
            self.error = None
            self.coverage.materialize(self.examples)
