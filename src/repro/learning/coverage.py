"""Coverage testing: does a candidate clause cover an example?

Two strategies are provided, mirroring Section 7.5:

* **Subsumption coverage** — a clause covers example ``e`` iff it θ-subsumes
  the ground bottom clause of ``e``.  This is Castor's (and ProGolem's)
  strategy; saturations are built once per example and cached.  Coverage of
  independent examples can be tested in parallel with a thread pool, and a
  per-(clause, example) cache plus a generality shortcut ("if C covers e then
  any generalization of C covers e") avoids repeated work.
* **Query coverage** — a clause covers ``e`` iff the body, with head
  variables bound to ``e``'s values, is satisfiable in the database.  This is
  the join-based evaluation that top-down learners with short clauses use.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..database.instance import DatabaseInstance
from ..database.query import QueryEvaluator
from ..logic.clauses import HornClause
from ..logic.subsumption import GroundClauseIndex, SubsumptionEngine
from .bottom_clause import BottomClauseBuilder, BottomClauseConfig
from .examples import Example


class CoverageResult:
    """Counts of covered positive and negative examples for one clause."""

    __slots__ = ("positives_covered", "negatives_covered", "covered_positive_examples")

    def __init__(
        self,
        positives_covered: int,
        negatives_covered: int,
        covered_positive_examples: Optional[List[Example]] = None,
    ):
        self.positives_covered = positives_covered
        self.negatives_covered = negatives_covered
        self.covered_positive_examples = covered_positive_examples or []

    def precision(self) -> float:
        """Training precision of the clause: covered positives over all covered."""
        total = self.positives_covered + self.negatives_covered
        if total == 0:
            return 0.0
        return self.positives_covered / total

    def coverage_score(self) -> int:
        """ProGolem/Castor's default score: positives minus negatives covered."""
        return self.positives_covered - self.negatives_covered

    def __repr__(self) -> str:
        return (
            f"CoverageResult(+{self.positives_covered}, -{self.negatives_covered})"
        )


class SubsumptionCoverageEngine:
    """θ-subsumption-based coverage with saturation caching and parallelism.

    Parameters
    ----------
    instance:
        The background database.
    saturation_config:
        Limits for ground bottom-clause construction of examples.
    threads:
        Number of worker threads used for coverage tests (Figure 2 studies
        the effect of this knob); 1 means fully sequential.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        saturation_config: Optional[BottomClauseConfig] = None,
        threads: int = 1,
    ):
        self.instance = instance
        self.builder = BottomClauseBuilder(
            instance, saturation_config or BottomClauseConfig(max_depth=3)
        )
        self.subsumption = SubsumptionEngine()
        self.threads = max(1, int(threads))
        self._saturation_cache: Dict[Example, HornClause] = {}
        self._saturation_index_cache: Dict[Example, GroundClauseIndex] = {}
        self._coverage_cache: Dict[Tuple[int, Example], bool] = {}
        self._lock = threading.Lock()
        self.coverage_tests_performed = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------ #
    # Saturations
    # ------------------------------------------------------------------ #
    def saturation(self, example: Example) -> HornClause:
        """Ground bottom clause of an example (cached)."""
        cached = self._saturation_cache.get(example)
        if cached is None:
            cached = self.builder.build_ground(example)
            self._saturation_cache[example] = cached
        return cached

    def saturation_index(self, example: Example) -> GroundClauseIndex:
        """Hash index over the example's saturation (cached, built on demand)."""
        cached = self._saturation_index_cache.get(example)
        if cached is None:
            cached = GroundClauseIndex(self.saturation(example))
            self._saturation_index_cache[example] = cached
        return cached

    def prepare(self, examples: Iterable[Example]) -> None:
        """Pre-build saturations for a collection of examples."""
        for example in examples:
            self.saturation(example)

    # ------------------------------------------------------------------ #
    # Coverage
    # ------------------------------------------------------------------ #
    def covers(self, clause: HornClause, example: Example, use_cache: bool = True) -> bool:
        """True when ``clause`` covers ``example`` (θ-subsumes its saturation)."""
        key = (id(clause), example)
        if use_cache:
            with self._lock:
                cached = self._coverage_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
        result = self.subsumption.covers_example(
            clause, self.saturation(example), self.saturation_index(example)
        )
        with self._lock:
            self.coverage_tests_performed += 1
            if use_cache:
                self._coverage_cache[key] = result
        return result

    def covered_examples(
        self, clause: HornClause, examples: Sequence[Example]
    ) -> List[Example]:
        """The subset of ``examples`` covered by ``clause`` (possibly in parallel)."""
        if self.threads == 1 or len(examples) < 4:
            return [e for e in examples if self.covers(clause, e)]
        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            flags = list(pool.map(lambda e: self.covers(clause, e), examples))
        return [example for example, flag in zip(examples, flags) if flag]

    def evaluate(
        self,
        clause: HornClause,
        positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> CoverageResult:
        """Coverage counts of a clause over positive and negative example lists."""
        covered_positives = self.covered_examples(clause, positives)
        covered_negatives = self.covered_examples(clause, negatives)
        return CoverageResult(
            len(covered_positives), len(covered_negatives), covered_positives
        )

    def mark_generalization_covers(
        self, general_clause: HornClause, covered: Iterable[Example]
    ) -> None:
        """Record that a generalization covers everything its parent covered.

        Castor's optimization (Section 7.5.4): if clause C covers e and C'' is
        more general than C, C'' also covers e — so seed the cache instead of
        re-testing.
        """
        with self._lock:
            for example in covered:
                self._coverage_cache[(id(general_clause), example)] = True


class QueryCoverageEngine:
    """Join-based coverage: bind head variables to the example and test the body.

    ``covered_examples`` is set-at-a-time: the whole example list is handed
    to the evaluator in one call, which backends with compiled queries (the
    SQLite backend) answer with a single SQL statement — the Python analogue
    of the paper's stored-procedure coverage path (Section 7.5.2).
    """

    def __init__(self, instance: DatabaseInstance):
        self.instance = instance
        self.evaluator = QueryEvaluator(instance)
        self.coverage_tests_performed = 0

    def covers(self, clause: HornClause, example: Example) -> bool:
        """True when the clause derives the example tuple from the database."""
        self.coverage_tests_performed += 1
        return self.evaluator.clause_covers_tuple(clause, example.values)

    def covered_examples(
        self, clause: HornClause, examples: Sequence[Example]
    ) -> List[Example]:
        covered = self.evaluator.covered_tuples(
            clause, [example.values for example in examples]
        )
        self.coverage_tests_performed += len(examples)
        return [example for example in examples if example.values in covered]

    def evaluate(
        self,
        clause: HornClause,
        positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> CoverageResult:
        covered_positives = self.covered_examples(clause, positives)
        covered_negatives = self.covered_examples(clause, negatives)
        return CoverageResult(
            len(covered_positives), len(covered_negatives), covered_positives
        )


def make_coverage_engine(
    instance: DatabaseInstance,
    strategy: str = "subsumption",
    saturation_config: Optional[BottomClauseConfig] = None,
    threads: int = 1,
    backend: Optional[str] = None,
):
    """Build a coverage engine, optionally re-materializing on another backend.

    ``strategy`` selects subsumption (Castor/ProGolem) or query (join-based)
    coverage; ``backend`` converts the instance first when it differs from
    the instance's current backend (the ``--backend`` knob of the experiment
    harness and benchmarks).
    """
    if backend is not None and backend != instance.backend_name:
        instance = instance.with_backend(backend)
    if strategy == "subsumption":
        return SubsumptionCoverageEngine(instance, saturation_config, threads=threads)
    if strategy == "query":
        return QueryCoverageEngine(instance)
    raise ValueError(
        f"unknown coverage strategy {strategy!r}; expected 'subsumption' or 'query'"
    )
