"""Coverage testing: does a candidate clause cover an example?

Two strategies are provided, mirroring Section 7.5:

* **Subsumption coverage** — a clause covers example ``e`` iff it θ-subsumes
  the ground bottom clause of ``e``.  This is Castor's (and ProGolem's)
  strategy; saturations are built once per example and cached.  Coverage of
  independent examples can be tested in parallel with a thread pool, and a
  per-(clause, example) cache plus a generality shortcut ("if C covers e then
  any generalization of C covers e") avoids repeated work.  When enabled,
  the **compiled** path materializes saturations into a
  :class:`~repro.database.sqlite_backend.SaturationStore` and tests a clause
  against every example's saturation with one SQL statement.
* **Query coverage** — a clause covers ``e`` iff the body, with head
  variables bound to ``e``'s values, is satisfiable in the database.  This is
  the join-based evaluation that top-down learners with short clauses use.

Both engines additionally answer **batched** requests — N candidate clauses
against one example set — through :class:`BatchCoverageEngine`, which the
covering loop uses to score a whole generation of refinements in one call
(fanned out across a connection pool on the ``sqlite-pooled`` backend).
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..database.delta import Delta
from ..database.instance import DatabaseInstance
from ..database.query import QueryEvaluator
from ..database.sqlite_backend import CompilationNotSupported, SaturationStore
from ..logic.clauses import HornClause
from ..logic.subsumption import GroundClauseIndex, SubsumptionEngine
from ..logic.terms import Constant
from .bottom_clause import (
    BatchSaturationEngine,
    BottomClauseBuilder,
    BottomClauseConfig,
)
from .examples import Example
from ..obs import registry as obs_registry

#: Per-engine label for registry series: each engine instance keeps its own
#: series, so counters on a fresh engine start at zero (tests and benchmarks
#: read them as plain attributes, which stay the stable surface).
_ENGINE_SEQ = itertools.count(1)


def examples_mask(covered: Iterable[Example], examples: Sequence[Example]) -> int:
    """Bitmask of ``examples`` positions present in ``covered``.

    Bit ``i`` is set when ``examples[i]`` is covered — coverage vectors are
    always *positional* in the caller's example order, so masks from the
    same example list compose with plain int operations (``|``, ``&``,
    ``bit_count``) instead of Python set algebra over ``Example`` objects.
    """
    covered_set = set(covered)
    mask = 0
    bit = 1
    for example in examples:
        if example in covered_set:
            mask |= bit
        bit <<= 1
    return mask


def mask_to_examples(mask: int, examples: Sequence[Example]) -> List[Example]:
    """The examples whose positional bits are set in ``mask``, in order."""
    return [example for i, example in enumerate(examples) if (mask >> i) & 1]


class CoverageResult:
    """Counts of covered positive and negative examples for one clause.

    When produced by a batched evaluation, ``positive_mask`` /
    ``negative_mask`` additionally carry the positional coverage bitmasks
    (bit ``i`` = example ``i`` of the scored list), letting downstream
    consumers combine clause coverages with int operations.
    """

    __slots__ = (
        "positives_covered",
        "negatives_covered",
        "covered_positive_examples",
        "positive_mask",
        "negative_mask",
    )

    def __init__(
        self,
        positives_covered: int,
        negatives_covered: int,
        covered_positive_examples: Optional[List[Example]] = None,
        positive_mask: Optional[int] = None,
        negative_mask: Optional[int] = None,
    ):
        self.positives_covered = positives_covered
        self.negatives_covered = negatives_covered
        self.covered_positive_examples = covered_positive_examples or []
        self.positive_mask = positive_mask
        self.negative_mask = negative_mask

    def precision(self) -> float:
        """Training precision of the clause: covered positives over all covered."""
        total = self.positives_covered + self.negatives_covered
        if total == 0:
            return 0.0
        return self.positives_covered / total

    def coverage_score(self) -> int:
        """ProGolem/Castor's default score: positives minus negatives covered."""
        return self.positives_covered - self.negatives_covered

    def __repr__(self) -> str:
        return (
            f"CoverageResult(+{self.positives_covered}, -{self.negatives_covered})"
        )


class SubsumptionCoverageEngine:
    """θ-subsumption-based coverage with saturation caching and parallelism.

    Parameters
    ----------
    instance:
        The background database.
    saturation_config:
        Limits for ground bottom-clause construction of examples.
    threads:
        Number of worker threads used for coverage tests (Figure 2 studies
        the effect of this knob); 1 means fully sequential.
    compiled:
        ``True`` pushes set-at-a-time coverage into SQL: saturations are
        additionally materialized into a
        :class:`~repro.database.sqlite_backend.SaturationStore` and
        ``covered_examples`` tests the clause against every saturation with
        one statement.  ``False`` disables it; ``None`` (default) enables it
        when the instance lives on a SQLite-family backend.  Examples or
        clauses the store cannot express silently fall back to the Python
        engine, with one caveat: the SQL path has no backtrack budget, so
        clauses whose Python search would exhaust ``max_backtracks`` are
        decided exactly instead of conservatively reported uncovered.
    saturation_store:
        An existing :class:`~repro.database.sqlite_backend.SaturationStore`
        to materialize into (re-added examples are deduplicated), so several
        engines over the *same instance* — e.g. cross-validation folds —
        share one warm store instead of re-materializing.
    """

    #: Below this many examples a compiled set-at-a-time statement does not
    #: pay for itself; single tests stay on the Python engine.
    COMPILED_MIN_EXAMPLES = 4

    def __init__(
        self,
        instance: DatabaseInstance,
        saturation_config: Optional[BottomClauseConfig] = None,
        threads: int = 1,
        compiled: Optional[bool] = None,
        saturation_store: Optional[SaturationStore] = None,
    ):
        self.instance = instance
        self._saturation_cache: Dict[Example, HornClause] = {}
        self._saturation_index_cache: Dict[Example, GroundClauseIndex] = {}
        self._coverage_cache: Dict[Tuple[HornClause, Example], bool] = {}
        self._compiled_ids: Dict[Example, int] = {}
        self._compiled_failed: Set[Example] = set()
        # Caches must exist before the builder property setter runs (it
        # clears them on rebind).
        self.builder = self._make_builder(instance, saturation_config)
        self.subsumption = SubsumptionEngine()
        self.threads = max(1, int(threads))
        if compiled is None:
            compiled = instance.backend_name.startswith("sqlite")
        self.compiled_enabled = bool(compiled)
        self._compiled_store: Optional[SaturationStore] = saturation_store
        self._lock = threading.Lock()
        # Serializes store creation + materialization so concurrent batch
        # workers never race to create two stores (whose independent id
        # sequences would collide in _compiled_ids).
        self._materialize_lock = threading.Lock()
        _labels = {"engine": next(_ENGINE_SEQ)}
        self._c_tests = obs_registry().counter(
            "coverage.subsumption.tests", **_labels
        )
        self._c_cache_hits = obs_registry().counter(
            "coverage.subsumption.cache_hits", **_labels
        )
        self._c_compiled_statements = obs_registry().counter(
            "coverage.subsumption.compiled_statements", **_labels
        )

    @property
    def coverage_tests_performed(self) -> int:
        return self._c_tests.value

    @property
    def cache_hits(self) -> int:
        return self._c_cache_hits.value

    @property
    def compiled_statements(self) -> int:
        return self._c_compiled_statements.value

    @property
    def builder(self) -> BottomClauseBuilder:
        return self._builder

    @builder.setter
    def builder(self, value: BottomClauseBuilder) -> None:
        # Keep the batch saturator wired to the live builder: callers (and
        # some tests) rebind ``engine.builder`` to swap construction
        # semantics, and the batched prepare() path must follow — a stale
        # saturator would silently cache clauses from the old builder.
        # Already-cached saturations (and the coverage decisions derived
        # from them) describe the OLD builder's semantics, so they are
        # dropped alongside.
        self._builder = value
        self.saturator = BatchSaturationEngine(value)
        self._saturation_cache.clear()
        self._saturation_index_cache.clear()
        self._coverage_cache.clear()
        self._compiled_ids.clear()
        self._compiled_failed.clear()

    def _make_builder(
        self,
        instance: DatabaseInstance,
        saturation_config: Optional[BottomClauseConfig],
    ) -> BottomClauseBuilder:
        """Factory hook for the engine's bottom-clause builder.

        Subclasses (Castor) override it to supply an IND-aware builder;
        the base constructor wires the batch saturator around whatever
        this returns, so overriding here never needs a post-hoc rebind.
        """
        return BottomClauseBuilder(
            instance, saturation_config or BottomClauseConfig(max_depth=3)
        )

    # ------------------------------------------------------------------ #
    # Saturations
    # ------------------------------------------------------------------ #
    def saturation(self, example: Example) -> HornClause:
        """Ground bottom clause of an example (cached)."""
        cached = self._saturation_cache.get(example)
        if cached is None:
            cached = self.builder.build_ground(example)
            self._saturation_cache[example] = cached
        return cached

    def saturation_index(self, example: Example) -> GroundClauseIndex:
        """Hash index over the example's saturation (cached, built on demand)."""
        cached = self._saturation_index_cache.get(example)
        if cached is None:
            cached = GroundClauseIndex(self.saturation(example))
            self._saturation_index_cache[example] = cached
        return cached

    def prepare(self, examples: Iterable[Example]) -> None:
        """Pre-build saturations for a whole example generation — one call.

        Missing saturations are built through the
        :class:`~repro.learning.bottom_clause.BatchSaturationEngine`, so on
        a sharded backend the generation is saturated by the worker fleet
        (each example on the shard that owns it) and the clauses shipped
        back, instead of a per-example Python construction loop here.
        """
        missing = [
            example
            for example in dict.fromkeys(examples)
            if example not in self._saturation_cache
        ]
        if not missing:
            return
        if len(missing) == 1:
            self.saturation(missing[0])
            return
        clauses = self.saturator.build_ground_batch(missing)
        for example, clause in zip(missing, clauses):
            self._saturation_cache[example] = clause

    # ------------------------------------------------------------------ #
    # Coverage
    # ------------------------------------------------------------------ #
    def covers(self, clause: HornClause, example: Example, use_cache: bool = True) -> bool:
        """True when ``clause`` covers ``example`` (θ-subsumes its saturation)."""
        key = (clause, example)
        if use_cache:
            with self._lock:
                cached = self._coverage_cache.get(key)
            if cached is not None:
                self._c_cache_hits.inc()
                return cached
        result = self.subsumption.covers_example(
            clause, self.saturation(example), self.saturation_index(example)
        )
        with self._lock:
            self._c_tests.inc()
            if use_cache:
                self._coverage_cache[key] = result
        return result

    def covered_examples(
        self, clause: HornClause, examples: Sequence[Example]
    ) -> List[Example]:
        """The subset of ``examples`` covered by ``clause``.

        On the compiled path one SQL statement tests the clause against every
        materialized saturation; otherwise the examples are tested one by one
        (optionally across the engine's thread pool).
        """
        if self.compiled_enabled and len(examples) >= self.COMPILED_MIN_EXAMPLES:
            # The compiled route batch-prepares inside _materialize.
            compiled = self._covered_examples_compiled(clause, examples)
            if compiled is not None:
                return compiled
        if len(examples) > 1:
            self.prepare(examples)
        if self.threads == 1 or len(examples) < 4:
            return [e for e in examples if self.covers(clause, e)]
        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            flags = list(pool.map(lambda e: self.covers(clause, e), examples))
        return [example for example, flag in zip(examples, flags) if flag]

    def covered_examples_batch(
        self,
        clauses: Sequence[HornClause],
        examples: Sequence[Example],
        parallelism: int = 1,
    ) -> List[List[Example]]:
        """Covered subsets for N clauses against one example list, in order.

        Saturations are materialized once for the whole batch; each clause
        then costs one compiled statement (or the cached/Python fallback).
        ``parallelism`` fans clauses out across threads — results are
        identical and in input order for any value.
        """
        clause_list = list(clauses)
        if parallelism <= 1 or len(clause_list) < 2:
            return [self.covered_examples(c, examples) for c in clause_list]
        workers = min(int(parallelism), len(clause_list))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(lambda c: self.covered_examples(c, examples), clause_list)
            )

    def covered_mask(self, clause: HornClause, examples: Sequence[Example]) -> int:
        """Positional coverage bitmask of ``clause`` over ``examples``.

        Same decision procedure as :meth:`covered_examples` (compiled /
        cached / Python fallback), packaged as an int whose bit ``i`` is the
        coverage of ``examples[i]``.
        """
        return examples_mask(self.covered_examples(clause, examples), examples)

    def covered_masks_batch(
        self,
        clauses: Sequence[HornClause],
        examples: Sequence[Example],
        parallelism: int = 1,
    ) -> List[int]:
        """Positional coverage bitmasks for N clauses, in input order."""
        covered_lists = self.covered_examples_batch(
            clauses, examples, parallelism=parallelism
        )
        return [examples_mask(covered, examples) for covered in covered_lists]

    def shard_spec(self) -> Optional[Tuple[object, ...]]:
        """Picklable recipe a shard worker rebuilds this engine from.

        The spec pins everything result-relevant — the builder config and
        whether the compiled (exact) or Python (backtrack-budgeted) decision
        procedure runs — so worker-side coverage is bit-identical to running
        this engine in-process.  Returns ``None`` for subclasses the workers
        do not know how to rebuild (they keep evaluating locally).
        """
        if type(self) is not SubsumptionCoverageEngine:
            return None
        return ("subsumption", self.builder.config, self.compiled_enabled)

    # ------------------------------------------------------------------ #
    # Compiled (SQL) subsumption coverage
    # ------------------------------------------------------------------ #
    def _materialize(self, examples: Sequence[Example]) -> None:
        """Add any not-yet-stored saturations to the compiled store.

        Missing saturations are built for the whole batch in one
        :meth:`prepare` call (sharded backends fan construction across their
        worker fleet) before the per-example store inserts.
        """
        with self._materialize_lock:
            store = self._compiled_store
            if store is None:
                store = self._compiled_store = SaturationStore()
            pending = [
                example
                for example in dict.fromkeys(examples)
                if example not in self._compiled_ids
                and example not in self._compiled_failed
            ]
            if not pending:
                return
            # Claim saturations another engine already materialized into
            # this (possibly shared) store — a previous fold, the harness
            # presaturation pass — without rebuilding them; add_example
            # would dedup on the same key anyway, but only after paying for
            # construction.
            remaining: List[Example] = []
            for example in pending:
                existing = store.existing_id(example.target, example.values)
                if existing is not None:
                    self._compiled_ids[example] = existing
                else:
                    remaining.append(example)
            if not remaining:
                return
            self.prepare(remaining)
            ids = self.saturator.materialize_into(
                store, remaining, saturation_fn=self.saturation
            )
            self._compiled_ids.update(ids)
            self._compiled_failed.update(
                example for example in remaining if example not in ids
            )

    def materialize(self, examples: Sequence[Example]) -> None:
        """Public entry point: saturate + store a whole example set in batch.

        Used by the experiment harness to pre-warm a shared
        :class:`~repro.database.sqlite_backend.SaturationStore` before
        cross-validation folds; a no-op for already-materialized examples.
        """
        if self.compiled_enabled:
            self._materialize(examples)
        else:
            self.prepare(examples)

    def _covered_examples_compiled(
        self, clause: HornClause, examples: Sequence[Example]
    ) -> Optional[List[Example]]:
        """Set-at-a-time coverage via the saturation store.

        Returns ``None`` when the clause itself cannot be compiled (the
        caller falls through to the Python path).  Examples the store
        rejected are tested individually through :meth:`covers`.
        """
        self._materialize(examples)
        store = self._compiled_store
        assert store is not None

        # Partition first, query second: bits already cached never touch
        # SQL, and the store query is scoped to exactly the uncached ids.
        # Under delta maintenance this is the difference between re-joining
        # the clause against every stored saturation and re-scoring only
        # the examples apply_delta() actually invalidated.
        flags: Dict[Example, bool] = {}
        pending: List[Example] = []
        uncached: List[Tuple[Example, int]] = []
        with self._lock:
            for example in dict.fromkeys(examples):
                cached = self._coverage_cache.get((clause, example))
                if cached is not None:
                    self._c_cache_hits.inc()
                    flags[example] = cached
                    continue
                example_id = self._compiled_ids.get(example)
                if example_id is None:
                    pending.append(example)
                else:
                    uncached.append((example, example_id))
        if uncached:
            try:
                covered_ids = store.covered_ids(
                    clause, only_ids=[example_id for _, example_id in uncached]
                )
            except CompilationNotSupported:
                return None
            self._c_compiled_statements.inc()
            with self._lock:
                for example, example_id in uncached:
                    flag = example_id in covered_ids
                    self._coverage_cache[(clause, example)] = flag
                    self._c_tests.inc()
                    flags[example] = flag
        for example in pending:
            flags[example] = self.covers(clause, example)
        return [example for example in examples if flags[example]]

    def evaluate(
        self,
        clause: HornClause,
        positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> CoverageResult:
        """Coverage counts of a clause over positive and negative example lists."""
        covered_positives = self.covered_examples(clause, positives)
        covered_negatives = self.covered_examples(clause, negatives)
        return CoverageResult(
            len(covered_positives), len(covered_negatives), covered_positives
        )

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta: Delta) -> Set[Example]:
        """Repair this engine's caches after ``delta`` hit the instance.

        A saturation can only change when the delta's touched values
        intersect its *footprint* — the example's head values plus every
        constant in the ground body (frontier expansion, including Castor's
        IND chase, only ever probes the database with values drawn from that
        set).  Exactly the intersecting examples are evicted from the
        saturation caches, the compiled store, and the per-(clause, example)
        coverage cache; everything else stays warm, and the bits cached for
        untouched examples remain valid because their saturations are
        provably unchanged.  Evicted examples rebuild lazily (or on the next
        :meth:`prepare`/:meth:`materialize`) against the updated instance,
        which makes the repaired state byte-identical to a cold rebuild.

        Returns the set of invalidated examples.
        """
        touched = delta.touched_values()
        if not touched:
            return set()
        invalidated: Set[Example] = set()
        with self._materialize_lock:
            for example, clause in self._saturation_cache.items():
                if self._footprint_intersects(example, clause, touched):
                    invalidated.add(example)
            store = self._compiled_store
            if store is not None:
                # Drop intersecting saturations store-wide (idempotent: a
                # second engine sharing the store finds nothing left to
                # drop), then resync compiled ids against what survived —
                # this also catches rows another engine already dropped.
                store.invalidate_touching(touched)
                for example, example_id in list(self._compiled_ids.items()):
                    if store.existing_id(example.target, example.values) != example_id:
                        invalidated.add(example)
            with self._lock:
                for example in invalidated:
                    self._saturation_cache.pop(example, None)
                    self._saturation_index_cache.pop(example, None)
                    self._compiled_ids.pop(example, None)
                if invalidated:
                    stale = [
                        key for key in self._coverage_cache if key[1] in invalidated
                    ]
                    for key in stale:
                        del self._coverage_cache[key]
        return invalidated

    @staticmethod
    def _footprint_intersects(
        example: Example, saturation: HornClause, touched: frozenset
    ) -> bool:
        """True when any touched value occurs in the saturation's footprint."""
        for value in example.values:
            if value in touched:
                return True
        for atom in saturation.body:
            for term in atom.terms:
                if isinstance(term, Constant) and term.value in touched:
                    return True
        return False

    def mark_generalization_covers(
        self, general_clause: HornClause, covered: Iterable[Example]
    ) -> None:
        """Record that a generalization covers everything its parent covered.

        Castor's optimization (Section 7.5.4): if clause C covers e and C'' is
        more general than C, C'' also covers e — so seed the cache instead of
        re-testing.
        """
        with self._lock:
            for example in covered:
                self._coverage_cache[(general_clause, example)] = True


class QueryCoverageEngine:
    """Join-based coverage: bind head variables to the example and test the body.

    ``covered_examples`` is set-at-a-time: the whole example list is handed
    to the evaluator in one call, which backends with compiled queries (the
    SQLite backend) answer with a single SQL statement — the Python analogue
    of the paper's stored-procedure coverage path (Section 7.5.2).
    """

    def __init__(self, instance: DatabaseInstance):
        self.instance = instance
        self.evaluator = QueryEvaluator(instance)
        self._c_tests = obs_registry().counter(
            "coverage.query.tests", engine=next(_ENGINE_SEQ)
        )

    @property
    def coverage_tests_performed(self) -> int:
        return self._c_tests.value

    def covers(self, clause: HornClause, example: Example) -> bool:
        """True when the clause derives the example tuple from the database."""
        self._c_tests.inc()
        return self.evaluator.clause_covers_tuple(clause, example.values)

    def covered_examples(
        self, clause: HornClause, examples: Sequence[Example]
    ) -> List[Example]:
        covered = self.evaluator.covered_tuples(
            clause, [example.values for example in examples]
        )
        self._c_tests.inc(len(examples))
        return [example for example in examples if example.values in covered]

    def covered_examples_batch(
        self,
        clauses: Sequence[HornClause],
        examples: Sequence[Example],
        parallelism: int = 1,
    ) -> List[List[Example]]:
        """Covered subsets for N clauses against one example list, in order.

        The whole batch is handed to the evaluator in one call; SQLite-family
        backends amortize the candidate temp table across the batch, and the
        pooled backend additionally fans clauses out over snapshot
        connections when ``parallelism > 1``.
        """
        clause_list = list(clauses)
        values = [example.values for example in examples]
        covered_sets = self.evaluator.covered_tuples_batch(
            clause_list, values, parallelism=parallelism
        )
        self._c_tests.inc(len(examples) * len(clause_list))
        return [
            [example for example in examples if example.values in covered]
            for covered in covered_sets
        ]

    def covered_mask(self, clause: HornClause, examples: Sequence[Example]) -> int:
        """Positional coverage bitmask of ``clause`` over ``examples``."""
        return examples_mask(self.covered_examples(clause, examples), examples)

    def covered_masks_batch(
        self,
        clauses: Sequence[HornClause],
        examples: Sequence[Example],
        parallelism: int = 1,
    ) -> List[int]:
        """Positional coverage bitmasks for N clauses, in input order."""
        covered_lists = self.covered_examples_batch(
            clauses, examples, parallelism=parallelism
        )
        return [examples_mask(covered, examples) for covered in covered_lists]

    # NOTE: deliberately no ``shard_spec`` here.  Query coverage reaches the
    # shard workers through the backend's ``covered_head_tuples_batch``
    # (clause-axis fan-out — a compiled statement costs the same however
    # many candidates it tests, so splitting the example axis would make
    # every shard pay the full per-clause compilation); a spec-based route
    # through :class:`BatchCoverageEngine` would shadow that with the
    # example-axis path.

    def evaluate(
        self,
        clause: HornClause,
        positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> CoverageResult:
        covered_positives = self.covered_examples(clause, positives)
        covered_negatives = self.covered_examples(clause, negatives)
        return CoverageResult(
            len(covered_positives), len(covered_negatives), covered_positives
        )


class CoverageBatch:
    """One generation of candidate clauses to score against shared examples.

    A convenience value object for callers that assemble scoring work in one
    place (the covering loop's beam expansion, FOIL's refinement scoring)
    before handing it to :class:`BatchCoverageEngine`.
    """

    __slots__ = ("clauses", "positives", "negatives")

    def __init__(
        self,
        clauses: Iterable[HornClause],
        positives: Sequence[Example] = (),
        negatives: Sequence[Example] = (),
    ):
        self.clauses: List[HornClause] = list(clauses)
        self.positives: List[Example] = list(positives)
        self.negatives: List[Example] = list(negatives)

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return (
            f"CoverageBatch({len(self.clauses)} clauses, "
            f"+{len(self.positives)}/-{len(self.negatives)} examples)"
        )


class BatchCoverageEngine:
    """Score N candidate clauses against one example set in a single call.

    Wraps either coverage engine and dispatches to its batched entry point,
    so the covering loop stays agnostic of the subsumption-vs-query
    distinction.  Results always come back in input order and are identical
    for every ``parallelism`` value — parallelism only changes wall-clock
    time, never which examples a clause covers.

    When the engine's instance lives on a backend exposing a sharded
    evaluation service (``"sqlite-sharded"``) and the engine publishes a
    ``shard_spec``, the whole batch is fanned out across the shard workers
    along the example axis and the per-shard coverage bitsets are merged
    back into input order — same results, N processes.
    """

    def __init__(self, engine, parallelism: int = 1):
        self.engine = engine
        self.parallelism = max(1, int(parallelism))

    def _sharded_batch(
        self, clauses: List[HornClause], examples: Sequence[Example]
    ) -> Optional[List[List[Example]]]:
        """Route through the instance backend's evaluation service, if any."""
        spec_fn = getattr(self.engine, "shard_spec", None)
        if spec_fn is None:
            return None
        backend = getattr(getattr(self.engine, "instance", None), "backend", None)
        service_fn = getattr(backend, "coverage_service", None)
        if service_fn is None:
            return None
        spec = spec_fn()
        if spec is None:
            return None
        return service_fn().covered_examples_batch(
            spec, clauses, examples, parallelism=self.parallelism
        )

    def covered_examples_batch(
        self, clauses: Sequence[HornClause], examples: Sequence[Example]
    ) -> List[List[Example]]:
        """Per-clause covered subsets of ``examples``, in input order."""
        clause_list = list(clauses)
        sharded = self._sharded_batch(clause_list, examples)
        if sharded is not None:
            return sharded
        batch = getattr(self.engine, "covered_examples_batch", None)
        if batch is not None:
            return batch(clause_list, examples, parallelism=self.parallelism)
        if self.parallelism > 1 and len(clause_list) > 1:
            workers = min(self.parallelism, len(clause_list))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(
                        lambda c: self.engine.covered_examples(c, examples),
                        clause_list,
                    )
                )
        return [self.engine.covered_examples(c, examples) for c in clause_list]

    def covered_masks_batch(
        self, clauses: Sequence[HornClause], examples: Sequence[Example]
    ) -> List[int]:
        """Positional coverage bitmasks for N clauses, in input order.

        Routes through the same sharded/pooled/batched machinery as
        :meth:`covered_examples_batch`; the per-shard covered subsets are
        merged into one int per clause (bit ``i`` = example ``i``).
        """
        clause_list = list(clauses)
        sharded = self._sharded_batch(clause_list, examples)
        if sharded is not None:
            return [examples_mask(covered, examples) for covered in sharded]
        masks = getattr(self.engine, "covered_masks_batch", None)
        if masks is not None:
            return masks(clause_list, examples, parallelism=self.parallelism)
        return [
            examples_mask(covered, examples)
            for covered in self.covered_examples_batch(clause_list, examples)
        ]

    def evaluate_batch(
        self,
        clauses: Sequence[HornClause],
        positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> List[CoverageResult]:
        """One :class:`CoverageResult` per clause, in input order.

        Scores are merged as positional bitmasks: counting covered examples
        is one ``int.bit_count()`` per clause instead of building and
        measuring Python lists of ``Example`` objects, and the masks ride
        along on the results for downstream int-algebra consumers.
        """
        clause_list = list(clauses)
        positive_masks = self.covered_masks_batch(clause_list, positives)
        negative_masks = self.covered_masks_batch(clause_list, negatives)
        return [
            CoverageResult(
                pos.bit_count(),
                neg.bit_count(),
                mask_to_examples(pos, positives),
                positive_mask=pos,
                negative_mask=neg,
            )
            for pos, neg in zip(positive_masks, negative_masks)
        ]

    def run(self, batch: CoverageBatch) -> List[CoverageResult]:
        """Evaluate a pre-assembled :class:`CoverageBatch`."""
        return self.evaluate_batch(batch.clauses, batch.positives, batch.negatives)

    def apply_delta(self, delta: Delta) -> Set[Example]:
        """Forward a data delta to the wrapped engine's cache repair.

        Engines without incremental maintenance (the stateless query
        engine) need none — their answers always read the live instance —
        so this returns an empty set for them.
        """
        repair = getattr(self.engine, "apply_delta", None)
        if repair is None:
            return set()
        return repair(delta)


def make_coverage_engine(
    instance: DatabaseInstance,
    strategy: str = "subsumption",
    saturation_config: Optional[BottomClauseConfig] = None,
    threads: int = 1,
    backend: Optional[str] = None,
    saturation_store: Optional[SaturationStore] = None,
):
    """Build a coverage engine, optionally re-materializing on another backend.

    ``strategy`` selects subsumption (Castor/ProGolem, with
    ``"subsumption-compiled"`` forcing the SQL saturation-store path and
    ``"subsumption-python"`` forcing the pure-Python engine) or query
    (join-based) coverage; ``backend`` converts the instance first when it
    differs from the instance's current backend (the ``--backend`` knob of
    the experiment harness and benchmarks).
    """
    if backend is not None and backend != instance.backend_name:
        instance = instance.with_backend(backend)
    if strategy == "subsumption":
        return SubsumptionCoverageEngine(
            instance,
            saturation_config,
            threads=threads,
            saturation_store=saturation_store,
        )
    if strategy == "subsumption-compiled":
        return SubsumptionCoverageEngine(
            instance,
            saturation_config,
            threads=threads,
            compiled=True,
            saturation_store=saturation_store,
        )
    if strategy == "subsumption-python":
        return SubsumptionCoverageEngine(
            instance, saturation_config, threads=threads, compiled=False
        )
    if strategy == "query":
        return QueryCoverageEngine(instance)
    raise ValueError(
        f"unknown coverage strategy {strategy!r}; expected 'subsumption', "
        "'subsumption-compiled', 'subsumption-python', or 'query'"
    )
