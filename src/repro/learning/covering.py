"""The generic covering loop shared by every sample-based learner (Algorithm 1).

A learner plugs a ``LearnClause`` strategy into :class:`CoveringLearner`:
repeatedly learn one clause, keep it if it meets the minimum-precision /
minimum-positives conditions, remove the positives it covers, and continue
until no uncovered positives remain (or no acceptable clause can be found).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Protocol, Sequence

from ..database.instance import DatabaseInstance
from ..logic.clauses import HornClause, HornDefinition
from ..obs import span as obs_span
from .coverage import examples_mask
from .examples import Example, ExampleSet


class ClauseLearner(Protocol):
    """Strategy interface: learn a single clause from uncovered positives."""

    def learn_clause(
        self,
        instance: DatabaseInstance,
        uncovered_positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> Optional[HornClause]:
        """Return the best clause found, or None when nothing acceptable exists."""
        ...  # pragma: no cover - protocol definition


class CoveringParameters:
    """Acceptance thresholds shared by the learners (the paper's settings).

    ``min_precision`` corresponds to FOIL's ``aaccur`` / Aleph's ``minacc`` /
    ProGolem & Castor's ``minprec`` (0.67 in the experiments: clauses must
    cover at least twice as many positives as negatives).  ``min_positives``
    corresponds to ``minpos`` (2).  ``max_clauses`` bounds the number of
    clauses a definition may accumulate, as a guard against degenerate runs
    where each clause covers a single example.

    ``max_seconds`` is a soft deadline: once it has elapsed, the loop stops
    learning further clauses and returns the definition accumulated so far
    (it never raises and never discards accepted clauses).  ``parallelism``
    records how many candidate clauses the learner's scoring batches may
    evaluate concurrently; the covering loop itself is sequential, but clause
    learners read the knob when building their
    :class:`~repro.learning.coverage.BatchCoverageEngine`.
    """

    def __init__(
        self,
        min_precision: float = 0.67,
        min_positives: int = 2,
        max_clauses: int = 50,
        max_seconds: Optional[float] = None,
        parallelism: int = 1,
    ):
        self.min_precision = float(min_precision)
        self.min_positives = int(min_positives)
        self.max_clauses = int(max_clauses)
        self.max_seconds = max_seconds
        self.parallelism = max(1, int(parallelism))


class CoveringLearner:
    """Algorithm 1: the covering loop.

    ``coverage_fn`` decides which uncovered positives a learned clause covers
    (learners supply their own coverage engine so the loop itself stays
    agnostic of the subsumption-vs-query distinction).
    """

    def __init__(
        self,
        clause_learner: ClauseLearner,
        coverage_fn: Callable[[HornClause, Sequence[Example]], List[Example]],
        precision_fn: Callable[[HornClause, Sequence[Example], Sequence[Example]], float],
        parameters: Optional[CoveringParameters] = None,
        coverage_mask_fn: Optional[Callable[[HornClause, Sequence[Example]], int]] = None,
    ):
        self.clause_learner = clause_learner
        self.coverage_fn = coverage_fn
        self.coverage_mask_fn = coverage_mask_fn
        self.precision_fn = precision_fn
        self.parameters = parameters or CoveringParameters()

    def learn(self, instance: DatabaseInstance, examples: ExampleSet) -> HornDefinition:
        """Run the covering loop and return the learned Horn definition."""
        definition = HornDefinition(examples.target)
        uncovered = list(examples.positives)
        negatives = list(examples.negatives)
        start = time.perf_counter()
        learner = getattr(
            self.clause_learner, "learner_label", type(self.clause_learner).__name__
        )

        while uncovered and len(definition) < self.parameters.max_clauses:
            if (
                self.parameters.max_seconds is not None
                and time.perf_counter() - start > self.parameters.max_seconds
            ):
                break
            clause = self.clause_learner.learn_clause(instance, uncovered, negatives)
            if clause is None:
                break
            with obs_span(
                "learn.cover", learner=learner, uncovered=len(uncovered)
            ) as cover_span:
                # Coverage of the round's clause as a positional bitmask
                # (bit i = uncovered[i]): counting is one bit_count() and
                # the uncovered-set update below is bit tests instead of
                # Python set algebra over Example objects.
                if self.coverage_mask_fn is not None:
                    covered_mask = self.coverage_mask_fn(clause, uncovered)
                else:
                    covered_mask = examples_mask(
                        self.coverage_fn(clause, uncovered), uncovered
                    )
                covered_count = covered_mask.bit_count()
                if covered_count < max(1, self.parameters.min_positives):
                    break
                precision = self.precision_fn(clause, uncovered, negatives)
                cover_span.set(covered=covered_count)
            if precision < self.parameters.min_precision:
                # The best clause of this round is too imprecise; covering
                # cannot improve it, so stop rather than loop forever.
                break
            definition.add(clause)
            uncovered = [
                e for i, e in enumerate(uncovered) if not (covered_mask >> i) & 1
            ]
        return definition
