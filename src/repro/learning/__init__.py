"""Shared learning infrastructure: examples, bottom clauses, coverage, metrics."""

from .bottom_clause import (
    BottomClauseBuilder,
    BottomClauseConfig,
    build_bottom_clause,
    build_saturation,
)
from .coverage import (
    BatchCoverageEngine,
    CoverageBatch,
    CoverageResult,
    QueryCoverageEngine,
    SubsumptionCoverageEngine,
    make_coverage_engine,
)
from .covering import ClauseLearner, CoveringLearner, CoveringParameters
from .evaluation import (
    CrossValidationReport,
    EvaluationResult,
    FoldOutcome,
    cross_validate,
    evaluate_definition,
)
from .examples import (
    Example,
    ExampleSet,
    examples_from_instance,
    sample_closed_world_negatives,
)

__all__ = [
    "BatchCoverageEngine",
    "BottomClauseBuilder",
    "BottomClauseConfig",
    "ClauseLearner",
    "CoverageBatch",
    "CoverageResult",
    "CoveringLearner",
    "CoveringParameters",
    "CrossValidationReport",
    "EvaluationResult",
    "Example",
    "ExampleSet",
    "FoldOutcome",
    "QueryCoverageEngine",
    "SubsumptionCoverageEngine",
    "build_bottom_clause",
    "build_saturation",
    "cross_validate",
    "evaluate_definition",
    "examples_from_instance",
    "make_coverage_engine",
    "sample_closed_world_negatives",
]
