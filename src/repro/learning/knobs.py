"""Shared evaluation-knob plumbing for the learner family.

Every learner carries the same four evaluation settings — ``backend``,
``shards``, ``saturation_store``, ``compiled_coverage`` — plus the uniform
``context=`` construction hook and the same two-line ``learn()`` preamble
(convert the instance, configure sharding).  :class:`EvaluationKnobs` is
that plumbing in exactly one place, so a change to backend normalization
lands everywhere at once instead of in per-learner copies.
"""

from __future__ import annotations

from typing import Optional

from ..database.backend import configure_backend_sharding
from ..database.instance import DatabaseInstance


class EvaluationKnobs:
    """Mixin: uniform evaluation knobs + ``context=`` + learn() preamble.

    Learners whose engines have no saturations (FOIL's query coverage) use
    only :meth:`_apply_context` and :meth:`_prepare_instance`, declaring
    ``backend``/``shards`` themselves — phantom store/compiled attributes
    would make ``SessionConfig.apply`` silently accept settings they cannot
    honor.
    """

    def _init_evaluation_knobs(
        self,
        backend: Optional[str] = None,
        shards: Optional[int] = None,
        saturation_store=None,
    ) -> None:
        # Storage/evaluation backend the learner wants the instance on
        # (None = use the instance as given) and the worker count on
        # sharded backends; both only move work, never change results.
        self.backend = backend
        self.shards = shards
        # Optional shared SaturationStore for the compiled coverage path
        # (sessions hand one out so repeated runs start warm).
        self.saturation_store = saturation_store
        # Compiled-subsumption override: True/False force the SQL/Python
        # decision procedure, None keeps the engine's backend-based default.
        self.compiled_coverage: Optional[bool] = None

    def _apply_context(self, context) -> None:
        """Uniform construction path: ``context`` is a SessionConfig or a
        LearningSession; its ``apply`` pushes every knob it carries.  Call
        last in ``__init__`` so the context overrides the plain kwargs."""
        if context is not None:
            context.apply(self)

    def _prepare_instance(self, instance: DatabaseInstance) -> DatabaseInstance:
        """The shared ``learn()`` preamble: backend conversion + sharding."""
        if self.backend is not None and self.backend != instance.backend_name:
            instance = instance.with_backend(self.backend)
        configure_backend_sharding(instance.backend, self.shards)
        return instance


class ThreadsAsParallelism:
    """Mixin for learners whose only fan-out is the engine thread pool."""

    @property
    def parallelism(self) -> int:
        return self.threads

    @parallelism.setter
    def parallelism(self, value: int) -> None:
        self.threads = max(1, int(value))
