"""Schema Independent Relational Learning — a reproduction of Picado et al. (2017).

The package provides:

* :mod:`repro.logic` — Datalog clauses, θ-subsumption, lgg, minimization;
* :mod:`repro.database` — an in-memory relational engine with FD/IND constraints;
* :mod:`repro.transform` — composition/decomposition transformations and the
  definition mappings they induce;
* :mod:`repro.learning` — examples, bottom clauses, coverage, evaluation;
* :mod:`repro.foil`, :mod:`repro.progol`, :mod:`repro.golem`,
  :mod:`repro.progolem` — baseline ILP learners;
* :mod:`repro.castor` — the schema-independent Castor learner (the paper's
  contribution);
* :mod:`repro.querybased` — query-based (MQ/EQ) learning and the A2 algorithm;
* :mod:`repro.datasets` — synthetic UW-CSE, HIV, and IMDb datasets with the
  paper's schema variants;
* :mod:`repro.distributed` — the sharded multi-process evaluation service
  behind the ``"sqlite-sharded"`` backend, plus the persistent evaluation
  server (``python -m repro.distributed.service --serve``); see
  ``docs/distributed.md``;
* :mod:`repro.session` — the unified front door: :class:`SessionConfig` +
  :class:`LearningSession` own backend/service/store lifecycle (see
  ``docs/session.md``);
* :mod:`repro.experiments` — drivers regenerating every table and figure of
  the paper's evaluation.

Quickstart::

    from repro import LearningSession, SessionConfig
    from repro.datasets import uwcse

    bundle = uwcse.load(seed=0)
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        learner = session.learner("castor", bundle.schema("original"))
        definition = learner.learn(bundle.instance("original"), bundle.examples)
    print(definition)
"""

from .castor import CastorLearner, CastorParameters
from .database import (
    DatabaseInstance,
    Delta,
    FunctionalDependency,
    InclusionDependency,
    RelationSchema,
    Schema,
)
from .foil import FoilLearner, FoilParameters
from .golem import GolemLearner, GolemParameters
from .learning import Example, ExampleSet, cross_validate, evaluate_definition
from .logic import Atom, Constant, HornClause, HornDefinition, Variable, parse_clause
from .progol import AlephFoilLearner, ProgolLearner, ProgolParameters
from .progolem import ProGolemLearner, ProGolemParameters
from .querybased import A2Learner, HornOracle
from .session import LearningSession, SessionConfig, connect
from .transform import ComposeOperation, DecomposeOperation, SchemaTransformation

__version__ = "1.0.0"

__all__ = [
    "A2Learner",
    "AlephFoilLearner",
    "Atom",
    "CastorLearner",
    "CastorParameters",
    "ComposeOperation",
    "Constant",
    "DatabaseInstance",
    "DecomposeOperation",
    "Delta",
    "Example",
    "ExampleSet",
    "FoilLearner",
    "FoilParameters",
    "FunctionalDependency",
    "GolemLearner",
    "GolemParameters",
    "HornClause",
    "HornDefinition",
    "HornOracle",
    "InclusionDependency",
    "LearningSession",
    "ProGolemLearner",
    "ProGolemParameters",
    "ProgolLearner",
    "ProgolParameters",
    "RelationSchema",
    "Schema",
    "SchemaTransformation",
    "SessionConfig",
    "Variable",
    "connect",
    "cross_validate",
    "evaluate_definition",
    "parse_clause",
    "__version__",
]
