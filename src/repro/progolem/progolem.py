"""ProGolem: bottom-up learning with ARMG and beam search (Section 6.4).

ProGolem's ``LearnClause``:

1. build the (variablized) bottom clause of a seed positive example;
2. repeatedly sample ``K`` positive examples, apply ARMG to every clause in
   the current beam for each sampled example, score the resulting candidates
   (by coverage = positives − negatives covered), and keep the best ``N`` in
   the beam;
3. stop when no candidate improves on the beam's best score and return the
   best clause, negative-reduced.

Negative reduction here is the plain literal-level version (drop a literal
when doing so does not increase negative coverage); Castor replaces it with
the inclusion-class-aware Algorithm 5.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..database.instance import DatabaseInstance
from ..database.schema import Schema
from ..foil.gain import precision
from ..learning.bottom_clause import BottomClauseBuilder, BottomClauseConfig
from ..learning.coverage import BatchCoverageEngine, SubsumptionCoverageEngine
from ..learning.covering import CoveringLearner, CoveringParameters
from ..learning.knobs import EvaluationKnobs
from ..learning.examples import Example, ExampleSet
from ..learning.prefetch import SaturationPrefetcher, backend_supports_prefetch
from ..logic.clauses import HornClause, HornDefinition
from ..logic.minimize import minimize_clause
from ..obs import span as obs_span
from .armg import armg


class ProGolemParameters:
    """ProGolem's knobs (``sample``, ``beamwidth``, ``minprec`` in GILPS).

    ``parallelism`` bounds how many candidate clauses one generation's
    scoring batch may evaluate concurrently (clause-level fan-out, distinct
    from the coverage engine's per-example ``threads`` knob); results are
    identical for every value.  ``max_seconds`` is the covering loop's soft
    deadline: when it elapses, learning stops and the clauses accepted so
    far are returned.

    ``prefetch`` overlaps the generation's saturation materialization with
    seed-clause construction (see :mod:`repro.learning.prefetch`): ``None``
    (default) enables it whenever the instance's backend declares
    ``supports_concurrent_reads``; ``False`` forces the sequential
    saturate → seed → score ordering.  Results are identical either way —
    the knob only moves work between threads.
    """

    def __init__(
        self,
        sample_size: int = 5,
        beam_width: int = 3,
        min_precision: float = 0.67,
        min_positives: int = 2,
        max_clauses: int = 25,
        max_armg_rounds: int = 10,
        bottom_clause: Optional[BottomClauseConfig] = None,
        seed: int = 0,
        max_seconds: Optional[float] = None,
        parallelism: int = 1,
        prefetch: Optional[bool] = None,
    ):
        self.sample_size = int(sample_size)
        self.beam_width = int(beam_width)
        self.min_precision = float(min_precision)
        self.min_positives = int(min_positives)
        self.max_clauses = int(max_clauses)
        self.max_armg_rounds = int(max_armg_rounds)
        self.bottom_clause = bottom_clause or BottomClauseConfig(max_depth=2)
        self.seed = int(seed)
        self.max_seconds = max_seconds
        self.parallelism = max(1, int(parallelism))
        self.prefetch = prefetch


class ProGolemClauseLearner:
    """LearnClause: ARMG-driven beam search from a seed bottom clause.

    Subclassed by Castor, which overrides bottom-clause construction, the
    ARMG step, and the final reduction.
    """

    #: Name stamped on learn.* spans (Castor's subclass overrides it).
    learner_label = "ProGolem"

    def __init__(
        self,
        schema: Schema,
        parameters: ProGolemParameters,
        coverage: SubsumptionCoverageEngine,
    ):
        self.schema = schema
        self.parameters = parameters
        self.coverage = coverage
        self.batch = BatchCoverageEngine(
            coverage, parallelism=getattr(parameters, "parallelism", 1)
        )
        self._rng = random.Random(parameters.seed)

    def _prefetch_enabled(self, instance: DatabaseInstance) -> bool:
        """Overlap saturation materialization with seed construction?

        Requires a concurrent-read-safe backend; the ``prefetch`` parameter
        can force it OFF but never onto an unsafe backend.
        """
        if getattr(self.parameters, "prefetch", None) is False:
            return False
        return backend_supports_prefetch(instance)

    # ------------------------------------------------------------------ #
    # Hooks overridden by Castor
    # ------------------------------------------------------------------ #
    def build_seed_clause(self, instance: DatabaseInstance, seed: Example) -> HornClause:
        """Variablized bottom clause of the seed example."""
        builder = BottomClauseBuilder(instance, self.parameters.bottom_clause)
        return builder.build(seed)

    def generalize(self, clause: HornClause, example: Example) -> HornClause:
        """One ARMG application (plain ProGolem semantics).

        Blocking-atom prefix probes route through the learner's batch engine
        so each search round is one batched (poolable/shardable) evaluation.
        """
        return armg(clause, example, self.coverage, batch=self.batch)

    def reduce(
        self,
        clause: HornClause,
        instance: DatabaseInstance,
        negatives: Sequence[Example],
    ) -> HornClause:
        """Literal-level negative reduction followed by minimization."""
        negatives = list(negatives)
        baseline = self.coverage.evaluate(clause, [], negatives).negatives_covered
        index = len(clause.body) - 1
        current = clause
        while index >= 0 and len(current.body) > 1:
            candidate = current.remove_literal_at(index)
            candidate = HornClause(candidate.head, candidate.head_connected_body())
            if not candidate.body or not candidate.is_safe():
                index -= 1
                continue
            covered = self.coverage.evaluate(candidate, [], negatives).negatives_covered
            if covered <= baseline:
                current = candidate
            index -= 1
            if index >= len(current.body):
                index = len(current.body) - 1
        return minimize_clause(current)

    # ------------------------------------------------------------------ #
    def learn_clause(
        self,
        instance: DatabaseInstance,
        uncovered_positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> Optional[HornClause]:
        if not uncovered_positives:
            return None
        positives = list(uncovered_positives)
        negatives = list(negatives)
        generation_examples = [*positives, *negatives]
        # Saturate the whole generation in ONE batch call (sharded backends
        # fan construction across their worker fleet) instead of letting the
        # beam loop build saturations one example at a time.  On
        # concurrent-read-safe backends the materialization runs on a
        # prefetch thread, overlapping with seed-clause construction below.
        prefetcher: Optional[SaturationPrefetcher] = None
        with obs_span(
            "learn.saturate",
            learner=self.learner_label,
            examples=len(generation_examples),
        ):
            if self._prefetch_enabled(instance):
                prefetcher = SaturationPrefetcher(
                    self.coverage, generation_examples
                ).start()
            else:
                self.coverage.prepare(generation_examples)
        seed = positives[0]
        seed_clause = self.build_seed_clause(instance, seed)
        if prefetcher is not None:
            # Join before ANY coverage use: the residual wait is what the
            # overlap did not manage to hide behind seed construction.
            with obs_span(
                "learn.prefetch",
                learner=self.learner_label,
                examples=len(generation_examples),
            ):
                prefetcher.wait()
        if not seed_clause.body:
            return None

        beam: List[HornClause] = [seed_clause]
        best_score = self._score(seed_clause, positives, negatives)

        for _ in range(self.parameters.max_armg_rounds):
            sample = positives[:]
            self._rng.shuffle(sample)
            sample = sample[: self.parameters.sample_size]
            # Generate the whole generation first, then score it as ONE batch:
            # all candidates share the same example lists, so the coverage
            # backend amortizes evaluation across them (and fans clauses out
            # over its connection pool when parallelism > 1).
            generation: List[HornClause] = []
            for clause in beam:
                for example in sample:
                    if self.coverage.covers(clause, example):
                        continue
                    candidate = self.generalize(clause, example)
                    if not candidate.body or not candidate.is_safe():
                        continue
                    generation.append(candidate)
            if not generation:
                break
            with obs_span(
                "learn.score",
                learner=self.learner_label,
                candidates=len(generation),
            ):
                results = self.batch.evaluate_batch(
                    generation, positives, negatives
                )
            scored = [
                (result.coverage_score(), candidate)
                for candidate, result in zip(generation, results)
                if result.coverage_score() > best_score
            ]
            if not scored:
                break
            scored.sort(key=lambda entry: entry[0], reverse=True)
            beam = [candidate for _, candidate in scored[: self.parameters.beam_width]]
            best_score = scored[0][0]

        best = max(beam, key=lambda c: self._score(c, positives, negatives))
        with obs_span("learn.reduce", learner=self.learner_label):
            reduced = self.reduce(best, instance, negatives)
        result = self.coverage.evaluate(reduced, positives, negatives)
        if result.positives_covered < self.parameters.min_positives:
            return None
        if result.precision() < self.parameters.min_precision:
            return None
        return reduced

    def _score(
        self, clause: HornClause, positives: Sequence[Example], negatives: Sequence[Example]
    ) -> float:
        result = self.coverage.evaluate(clause, list(positives), list(negatives))
        return result.coverage_score()


class ProGolemLearner(EvaluationKnobs):
    """Public ProGolem learner."""

    name = "ProGolem"

    clause_learner_class = ProGolemClauseLearner

    def __init__(
        self,
        schema: Schema,
        parameters: Optional[ProGolemParameters] = None,
        threads: int = 1,
        parallelism: Optional[int] = None,
        saturation_store=None,
        backend: Optional[str] = None,
        shards: Optional[int] = None,
        context=None,
    ):
        self.schema = schema
        self.parameters = parameters or ProGolemParameters()
        self.threads = threads
        self._init_evaluation_knobs(
            backend=backend, shards=shards, saturation_store=saturation_store
        )
        if parallelism is not None:
            self.parameters.parallelism = max(1, int(parallelism))
        self._apply_context(context)

    @property
    def parallelism(self) -> int:
        """Clause-level scoring fan-out (the experiment harness sets this)."""
        return self.parameters.parallelism

    @parallelism.setter
    def parallelism(self, value: int) -> None:
        self.parameters.parallelism = max(1, int(value))

    def make_coverage_engine(self, instance: DatabaseInstance) -> SubsumptionCoverageEngine:
        """Build the coverage engine (overridden by Castor to add IND awareness)."""
        return SubsumptionCoverageEngine(
            instance,
            self.parameters.bottom_clause,
            threads=self.threads,
            compiled=self.compiled_coverage,
            saturation_store=self.saturation_store,
        )

    def make_clause_learner(
        self, instance: DatabaseInstance, coverage: SubsumptionCoverageEngine
    ) -> ProGolemClauseLearner:
        return self.clause_learner_class(self.schema, self.parameters, coverage)

    def learn(self, instance: DatabaseInstance, examples: ExampleSet) -> HornDefinition:
        instance = self._prepare_instance(instance)
        coverage = self.make_coverage_engine(instance)
        clause_learner = self.make_clause_learner(instance, coverage)
        covering = CoveringLearner(
            clause_learner,
            coverage_fn=coverage.covered_examples,
            coverage_mask_fn=coverage.covered_mask,
            precision_fn=lambda clause, pos, neg: precision(
                len(coverage.covered_examples(clause, pos)),
                len(coverage.covered_examples(clause, neg)),
            ),
            parameters=CoveringParameters(
                min_precision=self.parameters.min_precision,
                min_positives=self.parameters.min_positives,
                max_clauses=self.parameters.max_clauses,
                max_seconds=self.parameters.max_seconds,
                parallelism=self.parameters.parallelism,
            ),
        )
        return covering.learn(instance, examples)
