"""The asymmetric relative minimal generalization (ARMG) operator (Algorithm 3).

Given an ordered bottom clause ``⊥e = T :- L1, ..., Ln`` and another positive
example ``e'``, ARMG drops *blocking atoms* — the first literal ``Li`` such
that the prefix clause ``T :- L1..Li`` no longer covers ``e'`` — and then any
literals left head-disconnected, until the whole clause covers ``e'``.  The
result is more general than ``⊥e`` and covers both examples.

The operator is schema *dependent* (Example 6.5): removing one literal of a
decomposed schema does not remove the information that a single composed
literal carries, so ProGolem produces non-equivalent generalizations across
(de)compositions.  Castor's variant (in :mod:`repro.castor.armg`) repairs
this using INDs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..learning.coverage import BatchCoverageEngine, SubsumptionCoverageEngine
from ..learning.examples import Example
from ..logic.atoms import Atom
from ..logic.clauses import HornClause


def find_blocking_atom(
    clause: HornClause,
    example: Example,
    coverage: SubsumptionCoverageEngine,
    batch: Optional[BatchCoverageEngine] = None,
    probe_width: Optional[int] = None,
) -> Optional[int]:
    """Index of the first blocking atom of ``clause`` w.r.t. ``example``.

    ``Li`` is blocking iff ``i`` is the least index such that the prefix
    clause ``T :- L1..Li`` does not cover the example.  Returns None when the
    full clause already covers the example (no blocking atom).

    Because prefix coverage is anti-monotone in the prefix length (adding
    literals can only lose coverage), the least failing prefix is bracketed
    by section search.  With ``batch`` supplied, each round's ``probe_width``
    prefix probes go through the batch seam as ONE batched evaluation
    (poolable / shardable); without it, probes are direct subsumption tests
    and width defaults to 1, which is exactly the classic binary search.
    """
    saturation = coverage.saturation(example)
    saturation_index = coverage.saturation_index(example)
    if probe_width is None:
        probe_width = batch.parallelism if batch is not None else 1
    probe_width = max(1, int(probe_width))
    covers: Dict[int, bool] = {}

    def probe(lengths: List[int]) -> None:
        pending = [length for length in dict.fromkeys(lengths) if length not in covers]
        if not pending:
            return
        prefixes = [
            HornClause(clause.head, clause.body[:length]) for length in pending
        ]
        if batch is None:
            for length, prefix in zip(pending, prefixes):
                covers[length] = coverage.subsumption.covers_example(
                    prefix, saturation, saturation_index
                )
        else:
            masks = batch.covered_masks_batch(prefixes, [example])
            for length, mask in zip(pending, masks):
                covers[length] = bool(mask & 1)

    total = len(clause.body)
    probe([total])
    if covers[total]:
        return None
    low, high = 1, total
    # Invariant: prefix of length high does NOT cover; prefix of length low-1 covers.
    while low < high:
        width = high - low
        sections = min(probe_width, width)
        points = sorted(
            {low + (width * (j + 1)) // (sections + 1) for j in range(sections)}
        )
        probe(points)
        for length in points:
            if covers[length]:
                low = max(low, length + 1)
            else:
                high = min(high, length)
    return low - 1


def armg(
    bottom_clause: HornClause,
    example: Example,
    coverage: SubsumptionCoverageEngine,
    post_removal_hook: Optional[Callable[[HornClause, Atom], HornClause]] = None,
    max_iterations: int = 1000,
    batch: Optional[BatchCoverageEngine] = None,
    probe_width: Optional[int] = None,
) -> HornClause:
    """Asymmetric relative minimal generalization of ``bottom_clause`` w.r.t. ``example``.

    ``post_removal_hook`` is called after each blocking-atom removal with the
    partially reduced clause and the removed atom, and must return the clause
    to continue with — Castor uses it to enforce IND consistency (Section
    7.2.1).  The standard ProGolem behaviour passes no hook.  ``batch`` /
    ``probe_width`` forward to :func:`find_blocking_atom`'s batched prefix
    probes.
    """
    current = bottom_clause
    for _ in range(max_iterations):
        blocking_index = find_blocking_atom(
            current, example, coverage, batch=batch, probe_width=probe_width
        )
        if blocking_index is None:
            break
        removed_atom = current.body[blocking_index]
        current = current.remove_literal_at(blocking_index)
        if post_removal_hook is not None:
            current = post_removal_hook(current, removed_atom)
        current = HornClause(current.head, current.head_connected_body())
        if not current.body:
            break
    return current
