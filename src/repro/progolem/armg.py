"""The asymmetric relative minimal generalization (ARMG) operator (Algorithm 3).

Given an ordered bottom clause ``⊥e = T :- L1, ..., Ln`` and another positive
example ``e'``, ARMG drops *blocking atoms* — the first literal ``Li`` such
that the prefix clause ``T :- L1..Li`` no longer covers ``e'`` — and then any
literals left head-disconnected, until the whole clause covers ``e'``.  The
result is more general than ``⊥e`` and covers both examples.

The operator is schema *dependent* (Example 6.5): removing one literal of a
decomposed schema does not remove the information that a single composed
literal carries, so ProGolem produces non-equivalent generalizations across
(de)compositions.  Castor's variant (in :mod:`repro.castor.armg`) repairs
this using INDs.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..learning.coverage import SubsumptionCoverageEngine
from ..learning.examples import Example
from ..logic.atoms import Atom
from ..logic.clauses import HornClause


def find_blocking_atom(
    clause: HornClause,
    example: Example,
    coverage: SubsumptionCoverageEngine,
) -> Optional[int]:
    """Index of the first blocking atom of ``clause`` w.r.t. ``example``.

    ``Li`` is blocking iff ``i`` is the least index such that the prefix
    clause ``T :- L1..Li`` does not cover the example.  Returns None when the
    full clause already covers the example (no blocking atom).

    Because prefix coverage is anti-monotone in the prefix length (adding
    literals can only lose coverage), the least failing prefix is found by
    binary search — O(log n) subsumption tests instead of O(n).
    """
    saturation = coverage.saturation(example)
    saturation_index = coverage.saturation_index(example)

    def prefix_covers(length: int) -> bool:
        prefix = HornClause(clause.head, clause.body[:length])
        return coverage.subsumption.covers_example(prefix, saturation, saturation_index)

    if prefix_covers(len(clause.body)):
        return None
    low, high = 1, len(clause.body)
    # Invariant: prefix of length high does NOT cover; prefix of length low-1 covers.
    while low < high:
        middle = (low + high) // 2
        if prefix_covers(middle):
            low = middle + 1
        else:
            high = middle
    return low - 1


def armg(
    bottom_clause: HornClause,
    example: Example,
    coverage: SubsumptionCoverageEngine,
    post_removal_hook: Optional[Callable[[HornClause, Atom], HornClause]] = None,
    max_iterations: int = 1000,
) -> HornClause:
    """Asymmetric relative minimal generalization of ``bottom_clause`` w.r.t. ``example``.

    ``post_removal_hook`` is called after each blocking-atom removal with the
    partially reduced clause and the removed atom, and must return the clause
    to continue with — Castor uses it to enforce IND consistency (Section
    7.2.1).  The standard ProGolem behaviour passes no hook.
    """
    current = bottom_clause
    for _ in range(max_iterations):
        blocking_index = find_blocking_atom(current, example, coverage)
        if blocking_index is None:
            break
        removed_atom = current.body[blocking_index]
        current = current.remove_literal_at(blocking_index)
        if post_removal_hook is not None:
            current = post_removal_hook(current, removed_atom)
        current = HornClause(current.head, current.head_connected_body())
        if not current.body:
            break
    return current
