"""ProGolem: ARMG-based bottom-up learning (baseline, schema dependent)."""

from .armg import armg, find_blocking_atom
from .progolem import ProGolemClauseLearner, ProGolemLearner, ProGolemParameters

__all__ = [
    "ProGolemClauseLearner",
    "ProGolemLearner",
    "ProGolemParameters",
    "armg",
    "find_blocking_atom",
]
