"""Blocking mypy ratchet: per-module error counts may never increase.

``python -m repro.analysis.ratchet`` runs mypy over ``src/repro`` (the
config lives in the repository's ``mypy.ini``), aggregates errors per
top-level subpackage (``repro.distributed``, ``repro.learning``, ...), and
compares against the committed baseline ``analysis/mypy_ratchet.json``:

* a module whose count **exceeds** its baseline budget fails the check
  (exit 1) — new type errors cannot land;
* a module with no baseline entry has budget **zero** — new subpackages
  start clean;
* counts *below* budget only print a hint; tightening is an explicit,
  reviewed act: ``python -m repro.analysis.ratchet --update`` regenerates
  the baseline with the measured counts and must be committed.

``--from-report FILE`` feeds a canned ``mypy`` stdout instead of invoking
mypy — the parsing/compare logic stays testable in environments without
the toolchain (this also keeps the analyzer itself zero-dependency).
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

DEFAULT_BASELINE = "analysis/mypy_ratchet.json"
DEFAULT_TARGET = "src/repro"

#: ``src/repro/distributed/server.py:12: error: ...`` (column optional).
_ERROR_LINE_RE = re.compile(
    r"^(?P<path>[^:\n]+\.py):\d+(?::\d+)?:\s*error:"
)


def module_for_path(path: str) -> str:
    """Aggregation key for one reported file: its top-level subpackage.

    ``src/repro/distributed/server.py`` -> ``repro.distributed``;
    files directly under ``repro/`` fold into the ``repro`` bucket.
    """
    parts = Path(path.replace("\\", "/")).parts
    if "repro" in parts:
        idx = parts.index("repro")
        tail = parts[idx:-1] if len(parts) - idx > 1 else parts[idx:]
        return ".".join(tail) if tail else "repro"
    return Path(path).stem


def parse_report(text: str) -> Dict[str, int]:
    """Per-module error counts from raw mypy stdout."""
    counts: Dict[str, int] = {}
    for line in text.splitlines():
        match = _ERROR_LINE_RE.match(line.strip())
        if match is None:
            continue
        module = module_for_path(match.group("path"))
        counts[module] = counts.get(module, 0) + 1
    return counts


def run_mypy(target: str) -> Tuple[str, int]:
    """Invoke mypy on ``target``; returns (stdout, returncode).

    Exit code 2 from mypy means a usage/crash error (distinct from 1 =
    "errors found"); both stdout and stderr are surfaced on failure.
    """
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--no-error-summary", target],
            capture_output=True,
            text=True,
            check=False,
        )
    except FileNotFoundError as exc:  # pragma: no cover - no interpreter?
        raise SystemExit(f"could not invoke mypy: {exc}") from exc
    if proc.returncode not in (0, 1):
        raise SystemExit(
            f"mypy crashed (exit {proc.returncode}):\n{proc.stdout}{proc.stderr}"
        )
    return proc.stdout, proc.returncode


def load_baseline(path: Path) -> Dict[str, int]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(
            f"no ratchet baseline at {path}; generate one with --update"
        ) from None
    modules = data.get("modules")
    if not isinstance(modules, dict):
        raise SystemExit(f"malformed baseline {path}: no 'modules' mapping")
    return {str(k): int(v) for k, v in modules.items()}


def write_baseline(path: Path, counts: Dict[str, int], target: str) -> None:
    payload = {
        "note": (
            "mypy ratchet baseline: per-module error budgets that "
            "`python -m repro.analysis.ratchet` asserts never increase. "
            "Regenerate (tighten) with --update after fixing errors."
        ),
        "command": "python -m repro.analysis.ratchet --update",
        "target": target,
        "modules": dict(sorted(counts.items())),
        "total": sum(counts.values()),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def compare(
    current: Dict[str, int], baseline: Dict[str, int]
) -> Tuple[List[str], List[str]]:
    """Returns (regressions, improvements) as printable lines."""
    regressions: List[str] = []
    improvements: List[str] = []
    for module in sorted(set(current) | set(baseline)):
        now = current.get(module, 0)
        budget = baseline.get(module, 0)
        if now > budget:
            regressions.append(
                f"{module}: {now} error(s) > baseline budget {budget}"
            )
        elif 0 < now < budget:
            # Zero-count modules are summarized by the caller; itemizing
            # every clean bucket buries the signal.
            improvements.append(
                f"{module}: {now} error(s) < budget {budget} — consider "
                "tightening with --update"
            )
    return regressions, improvements


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.ratchet",
        description="Blocking mypy ratchet (per-module error budgets).",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline JSON path (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--target",
        default=DEFAULT_TARGET,
        help=f"what to typecheck (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--from-report",
        metavar="FILE",
        help="parse this saved mypy stdout instead of running mypy",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="regenerate the baseline from the measured counts (commit it)",
    )
    args = parser.parse_args(argv)

    if args.from_report:
        report = Path(args.from_report).read_text(encoding="utf-8")
    else:
        report, _ = run_mypy(args.target)
    current = parse_report(report)

    baseline_path = Path(args.baseline)
    if args.update:
        write_baseline(baseline_path, current, args.target)
        print(
            f"wrote {baseline_path}: {sum(current.values())} error(s) across "
            f"{len(current)} module(s)"
        )
        return 0

    baseline = load_baseline(baseline_path)
    regressions, improvements = compare(current, baseline)
    total = sum(current.values())
    budget_total = sum(baseline.values())
    print(
        f"mypy ratchet: {total} error(s) measured, "
        f"{budget_total} budgeted across {len(baseline)} module(s)"
    )
    for line in improvements:
        print(f"  note: {line}")
    if regressions:
        for line in regressions:
            print(f"  FAIL: {line}")
        print(
            "type-error count increased; fix the new errors (or, for a "
            "deliberate accepted debt, regenerate the baseline with "
            "--update and justify it in review)"
        )
        return 1
    print("ok: no module exceeds its budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
