"""Core of the domain-aware static analyzer.

The engine is deliberately tiny and stdlib-only: it loads Python sources,
parses them once, hands each module to every registered rule, and collects
structured :class:`Finding`\\ s.  Rules are AST visitors with two optional
hooks — per-module (:meth:`Rule.check_module`) and whole-run
(:meth:`Rule.finalize`) for cross-file properties such as lock-order
cycles or package layout.

Suppressions are inline and **must carry a reason**::

    something_flagged()  # repro: noqa[REP001] -- dumps-only fingerprint

A ``# repro: noqa[...]`` comment with no ``-- reason`` text, an unknown
rule id, or one that suppresses nothing is itself reported under the meta
rule id ``REP000`` — the suppression budget stays honest because stale or
unexplained escapes cannot accumulate silently.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Meta rule id used for malformed / unused suppressions.
META_RULE = "REP000"

#: Matches a ``repro: noqa`` comment — bare ``[REP001]`` or the
#: comma-separated ``[REP001,REP004]`` form, with an optional reason after
#: a double dash.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<ids>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    reason: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.rule}{tag} {self.message}"


@dataclass
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: Optional[str]
    used: bool = False


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Suppression] = field(default_factory=dict)

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()


class Rule:
    """Base class for analyzer rules.

    Subclasses set ``rule_id``/``name``/``description`` and override
    :meth:`check_module` (per file, called with a parsed
    :class:`ModuleContext`) and/or :meth:`finalize` (once per run, after
    every module has been seen — the hook for cross-file properties).
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def finalize(self, modules: Sequence[ModuleContext]) -> Iterator[Finding]:
        return iter(())

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            message=message,
        )


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """Extract ``# repro: noqa[...]`` comments, keyed by line number.

    Uses the tokenizer (not a per-line regex) so string literals that merely
    *mention* the syntax are never treated as suppressions.
    """
    suppressions: Dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            ids = tuple(
                part.strip() for part in match.group("ids").split(",") if part.strip()
            )
            suppressions[token.start[0]] = Suppression(
                line=token.start[0], rule_ids=ids, reason=match.group("reason")
            )
    except tokenize.TokenError:
        pass  # unparsable tail; the ast.parse error is reported elsewhere
    return suppressions


def load_module(path: Path, display_path: str) -> Optional[ModuleContext]:
    """Parse one file into a :class:`ModuleContext` (None if unreadable)."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    return ModuleContext(
        path=path,
        display_path=display_path,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def iter_python_files(paths: Sequence[str]) -> Iterator[Tuple[Path, str]]:
    """Yield ``(path, display_path)`` for every ``.py`` under ``paths``.

    Display paths are normalized to ``/`` separators and kept relative to
    the invocation (stable across machines, usable in CI artifacts).
    """
    seen = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates: Iterable[Path] = [root]
        else:
            candidates = sorted(root.rglob("*.py"))
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate, candidate.as_posix()


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run."""

    findings: List[Finding]
    paths: List[str]
    rule_ids: List[str]

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "rules": self.rule_ids,
            "paths": self.paths,
            "findings": [f.as_dict() for f in self.findings],
            "summary": {
                "total": len(self.findings),
                "suppressed": len(self.suppressed),
                "unsuppressed": len(self.unsuppressed),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=False)

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(
            f"{len(self.unsuppressed)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.paths)} file(s) scanned"
        )
        return "\n".join(lines)


def _apply_suppressions(
    findings: List[Finding], modules: Dict[str, ModuleContext]
) -> List[Finding]:
    """Mark findings covered by a same-line justified noqa as suppressed."""
    out: List[Finding] = []
    for f in findings:
        ctx = modules.get(f.path)
        suppression = ctx.suppressions.get(f.line) if ctx is not None else None
        if (
            suppression is not None
            and f.rule in suppression.rule_ids
            and suppression.reason
        ):
            suppression.used = True
            out.append(
                Finding(
                    rule=f.rule,
                    path=f.path,
                    line=f.line,
                    message=f.message,
                    suppressed=True,
                    reason=suppression.reason,
                )
            )
        else:
            out.append(f)
    return out


def _suppression_hygiene(
    modules: Dict[str, ModuleContext], known_rule_ids: Sequence[str]
) -> Iterator[Finding]:
    """REP000: reason-less, unknown-id, or unused suppressions."""
    known = set(known_rule_ids) | {META_RULE}
    for ctx in modules.values():
        for suppression in ctx.suppressions.values():
            if not suppression.reason:
                yield Finding(
                    rule=META_RULE,
                    path=ctx.display_path,
                    line=suppression.line,
                    message=(
                        "suppression must carry a reason: "
                        "'# repro: noqa[RULE-ID] -- why this is safe'"
                    ),
                )
                continue
            unknown = [r for r in suppression.rule_ids if r not in known]
            if unknown or not suppression.rule_ids:
                yield Finding(
                    rule=META_RULE,
                    path=ctx.display_path,
                    line=suppression.line,
                    message=f"suppression names unknown rule id(s): {unknown or '[]'}",
                )
                continue
            if not suppression.used:
                yield Finding(
                    rule=META_RULE,
                    path=ctx.display_path,
                    line=suppression.line,
                    message=(
                        "unused suppression for "
                        f"{', '.join(suppression.rule_ids)}: nothing fired here"
                    ),
                )


def run_analysis(
    paths: Sequence[str],
    rules: Sequence[Rule],
    check_suppression_hygiene: bool = True,
) -> AnalysisResult:
    """Run ``rules`` over every Python file under ``paths``."""
    modules: Dict[str, ModuleContext] = {}
    scanned: List[str] = []
    for path, display in iter_python_files(paths):
        ctx = load_module(path, display)
        if ctx is None:
            continue
        modules[display] = ctx
        scanned.append(display)

    findings: List[Finding] = []
    module_list = list(modules.values())
    for rule in rules:
        for ctx in module_list:
            findings.extend(rule.check_module(ctx))
        findings.extend(rule.finalize(module_list))

    findings = _apply_suppressions(findings, modules)
    if check_suppression_hygiene:
        findings.extend(_suppression_hygiene(modules, [r.rule_id for r in rules]))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return AnalysisResult(
        findings=findings,
        paths=scanned,
        rule_ids=[r.rule_id for r in rules],
    )
