"""Domain-aware static analysis: the codebase's invariants, machine-checked.

``python -m repro.analysis [--rule ID] [--format json|text] [paths]`` runs
the REP001–REP006 battery (see :mod:`repro.analysis.rules`) over the given
paths and exits non-zero on any unsuppressed finding.  The companion
ratchet (``python -m repro.analysis.ratchet``) keeps mypy error counts
monotonically non-increasing per module.

See ``docs/static-analysis.md`` for the rule catalog, the suppression
contract, and how to add a rule.
"""

from repro.analysis.engine import (
    AnalysisResult,
    Finding,
    ModuleContext,
    Rule,
    run_analysis,
)
from repro.analysis.rules import default_rules

__all__ = [
    "AnalysisResult",
    "Finding",
    "ModuleContext",
    "Rule",
    "default_rules",
    "run_analysis",
]
