"""CLI: ``python -m repro.analysis [--rule ID] [--format json|text] [paths]``.

Exit status: 0 when every finding is suppressed (with a reason), 1
otherwise, 2 on usage errors.  ``--format json`` emits the stable v1
schema consumed by the CI artifact upload.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.engine import run_analysis
from repro.analysis.rules import default_rules

DEFAULT_PATHS = ("src/repro", "tests", "benchmarks")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the REP001-REP006 domain rule battery.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule id (repeatable, e.g. --rule REP004)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="also write the JSON report to PATH (any --format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    battery = default_rules()
    if args.list_rules:
        for rule in battery:
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0

    if args.rules:
        known = {rule.rule_id for rule in battery}
        unknown = [r for r in args.rules if r not in known]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")
        battery = [rule for rule in battery if rule.rule_id in args.rules]

    # Suppression hygiene (REP000) needs the full battery's ids to judge
    # "unused"; a partial run skips it so filtering never manufactures
    # false unused-suppression findings.
    result = run_analysis(
        args.paths, battery, check_suppression_hygiene=args.rules is None
    )

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(result.to_json() + "\n")
    if args.format == "json":
        print(result.to_json())
    else:
        print(result.render_text())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
