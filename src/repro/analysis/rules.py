"""The domain rule battery: REP001–REP006.

Each rule encodes an invariant this codebase established in earlier PRs
but until now enforced only through docs and review:

* **REP001 wire-safety** — executable serialization (``pickle``,
  ``marshal``) and ``eval``/``exec`` stay inside the trusted
  coordinator↔worker seam.  The untrusted client seam speaks tagged JSON
  only (``docs/distributed.md``).
* **REP002 capability-guard** — capability-gated backend calls
  (``neighbors_of_batch``, concurrent-read prefetching) must be dominated
  by a ``supports_*`` probe, or live in a class that declares the
  capability.
* **REP003 obs-discipline** — no ad-hoc ``self.<counter> += 1`` or
  ``time.time()`` timing in ``distributed/``/``learning/``/``database/``;
  counters and timings route through :mod:`repro.obs`.  Span names follow
  the documented dotted ``noun.verb`` grammar.
* **REP004 lock-order** — the static lock-acquisition graph must stay
  acyclic, and blocking calls (socket ``recv``, ``subprocess``, queue
  ``get`` without a timeout) may not run inside a held-lock region.
* **REP005 typed-wire-errors** — code reachable from server/client
  request handlers raises only the typed wire-crossing errors from the
  hardening PR, never bare ``Exception``/``RuntimeError``.
* **REP006 tests-are-packages** — every test directory is a package
  (``__init__.py`` present); duplicate basenames otherwise break pytest
  collection (the ROADMAP convention).

Rules take their allowlists as constructor arguments so tests can point
them at fixture trees; the defaults encode this repository's layout.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import Finding, ModuleContext, Rule

# --------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------- #


def _func_name(node: ast.Call) -> Optional[str]:
    """Simple name of the called function: ``f(...)`` or ``x.f(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _receiver_parts(node: ast.AST) -> List[str]:
    """``self.backend.neighbors_of_batch`` -> ``["self", "backend"]``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    parts.reverse()
    return parts


def _iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Optional[ast.ClassDef]]]:
    """Yield ``(function, enclosing_class)`` for every def in the module."""

    def walk(node: ast.AST, cls: Optional[ast.ClassDef]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from walk(child, cls)
            else:
                yield from walk(child, cls)

    return walk(tree, None)


def _path_matches(display_path: str, suffixes: Sequence[str]) -> bool:
    return any(display_path.endswith(suffix) for suffix in suffixes)


# --------------------------------------------------------------------- #
# REP001 — wire safety
# --------------------------------------------------------------------- #


class WireSafetyRule(Rule):
    """Pickle/marshal/eval may only appear on the trusted worker seam."""

    rule_id = "REP001"
    name = "wire-safety"
    description = (
        "no pickle/marshal import or eval/exec call outside the trusted "
        "coordinator<->worker modules"
    )

    #: The coordinator<->worker seam (spawned processes, HMAC-authenticated
    #: sockets) plus the test modules dedicated to exercising that seam —
    #: including the hardening tests that *send* pickle bombs to prove the
    #: server rejects them.
    DEFAULT_ALLOWLIST = (
        "repro/distributed/protocol.py",
        "repro/distributed/worker.py",
        "tests/distributed/test_wire.py",
        "tests/distributed/test_server_hardening.py",
        "tests/distributed/test_shard_invariance.py",
    )

    BANNED_MODULES = ("pickle", "marshal")
    BANNED_BUILTINS = ("eval", "exec")

    def __init__(self, allowlist: Sequence[str] = DEFAULT_ALLOWLIST):
        self.allowlist = tuple(allowlist)

    def _excused_modules(self, ctx: ModuleContext) -> Set[str]:
        """Banned modules whose *import* carries a justified suppression.

        A reasoned ``# repro: noqa[REP001]`` on the import line excuses that
        module's call sites in the same file — one justification per module
        per file, instead of one per call, keeps the suppression budget
        meaningful while still flagging every unexcused use.
        """
        excused: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Import):
                continue
            suppression = ctx.suppressions.get(node.lineno)
            if (
                suppression is None
                or self.rule_id not in suppression.rule_ids
                or not suppression.reason
            ):
                continue
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in self.BANNED_MODULES:
                    excused.add(alias.asname or root)
        return excused

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _path_matches(ctx.display_path, self.allowlist):
            return
        excused = self._excused_modules(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.BANNED_MODULES:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {root!r} outside the trusted "
                            "coordinator<->worker seam; the client seam is "
                            "tagged-JSON only",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in self.BANNED_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {root!r} outside the trusted "
                        "coordinator<->worker seam",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in self.BANNED_MODULES
                    and func.value.id not in excused
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"call to {func.value.id}.{func.attr}() outside the "
                        "trusted coordinator<->worker seam",
                    )
                elif (
                    isinstance(func, ast.Name)
                    and func.id in self.BANNED_BUILTINS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"call to builtin {func.id}() — dynamic code "
                        "execution is banned codebase-wide",
                    )


# --------------------------------------------------------------------- #
# REP002 — capability guard
# --------------------------------------------------------------------- #


class CapabilityGuardRule(Rule):
    """Capability-gated backend calls need a dominating ``supports_*`` probe."""

    rule_id = "REP002"
    name = "capability-guard"
    description = (
        "capability-gated backend methods must be dominated by a "
        "supports_* check or declared by the enclosing class"
    )

    #: gated attribute-call -> required capability flag.  Only calls whose
    #: receiver chain ends at a backend (``self.backend.f()``, ``backend.f()``)
    #: are gated — the DatabaseInstance facade falls back internally.
    DEFAULT_GATED_METHODS = {
        "neighbors_of_batch": "supports_saturation_queries",
        "neighbors_of": "supports_saturation_queries",
    }
    #: gated constructor -> required capability flag (the prefetcher reads
    #: the instance concurrently with the caller).
    DEFAULT_GATED_CONSTRUCTORS = {
        "SaturationPrefetcher": "supports_concurrent_reads",
    }
    #: helper predicates that count as a probe of the capability.
    DEFAULT_GUARD_HELPERS = {
        "supports_saturation_queries": frozenset(),
        "supports_concurrent_reads": frozenset(
            {"backend_supports_prefetch", "_prefetch_enabled"}
        ),
    }
    #: unit tests drive gated objects directly against controlled doubles;
    #: the capability contract is a production-code discipline.
    DEFAULT_EXCLUDE = ("tests/",)

    def __init__(
        self,
        gated_methods: Optional[Dict[str, str]] = None,
        gated_constructors: Optional[Dict[str, str]] = None,
        guard_helpers: Optional[Dict[str, frozenset]] = None,
        exclude: Sequence[str] = DEFAULT_EXCLUDE,
    ):
        self.exclude = tuple(exclude)
        self.gated_methods = dict(
            self.DEFAULT_GATED_METHODS if gated_methods is None else gated_methods
        )
        self.gated_constructors = dict(
            self.DEFAULT_GATED_CONSTRUCTORS
            if gated_constructors is None
            else gated_constructors
        )
        self.guard_helpers = dict(
            self.DEFAULT_GUARD_HELPERS if guard_helpers is None else guard_helpers
        )

    def _class_declares(self, cls: Optional[ast.ClassDef], capability: str) -> bool:
        if cls is None:
            return False
        for stmt in cls.body:
            targets: List[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == capability:
                    return True
        return False

    def _guarded_before(
        self, func: ast.AST, line: int, capability: str
    ) -> bool:
        """A probe of ``capability`` occurs at or before ``line`` in ``func``.

        Domination is approximated lexically: any earlier mention of the
        capability attribute, its name as a string literal (the ``getattr``
        probe idiom), or a call to a registered guard helper counts.  The
        approximation is sound in practice because probes in this codebase
        always precede the gated call in source order.
        """
        helpers = self.guard_helpers.get(capability, frozenset())
        for node in ast.walk(func):
            node_line = getattr(node, "lineno", None)
            if node_line is None or node_line > line:
                continue
            if isinstance(node, ast.Attribute) and node.attr == capability:
                return True
            if isinstance(node, ast.Constant) and node.value == capability:
                return True
            if isinstance(node, ast.Call) and _func_name(node) in helpers:
                return True
        return False

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if any(part in ctx.display_path for part in self.exclude):
            return
        for func, cls in _iter_functions(ctx.tree):
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                capability = self._capability_for(node)
                if capability is None:
                    continue
                if self._class_declares(cls, capability):
                    continue
                if self._guarded_before(func, node.lineno, capability):
                    continue
                name = _func_name(node)
                yield self.finding(
                    ctx,
                    node,
                    f"call to capability-gated {name}() is not dominated by "
                    f"a {capability} probe (and the enclosing class does not "
                    "declare the capability)",
                )

    def _capability_for(self, node: ast.Call) -> Optional[str]:
        name = _func_name(node)
        if name in self.gated_constructors and isinstance(node.func, ast.Name):
            return self.gated_constructors[name]
        if name in self.gated_methods and isinstance(node.func, ast.Attribute):
            receiver = _receiver_parts(node.func.value)
            if receiver and receiver[-1] == "backend":
                return self.gated_methods[name]
        return None


# --------------------------------------------------------------------- #
# REP003 — observability discipline
# --------------------------------------------------------------------- #


class ObsDisciplineRule(Rule):
    """Counters/timings route through repro.obs; span names follow the grammar."""

    rule_id = "REP003"
    name = "obs-discipline"
    description = (
        "no ad-hoc self.<counter> += 1 or time.time() in distributed/"
        "learning/database; span names follow the noun.verb grammar"
    )

    #: packages where the registry is mandatory (the obs module itself and
    #: the algorithmic layers that predate it are out of scope).
    DEFAULT_SCOPED_DIRS = (
        "repro/distributed/",
        "repro/learning/",
        "repro/database/",
    )
    #: span-name grammar applies to all library code (not tests/benchmarks,
    #: which construct throwaway spans to exercise the tracer itself).
    DEFAULT_SPAN_SCOPE = ("repro/",)
    DEFAULT_SPAN_EXCLUDE = ("tests/", "benchmarks/")

    COUNTER_ATTR_RE = re.compile(
        r"(?:^|_)(count|counts|counter|counters|total|totals|hits|misses|"
        r"errors|retries|batches|requests|reloads|loads|evictions|conflicts|"
        r"coalesced)(?:_|$)"
    )
    SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")
    SPAN_PREFIX_RE = re.compile(r"^([a-z][a-z0-9_]*\.)+$")

    def __init__(
        self,
        scoped_dirs: Sequence[str] = DEFAULT_SCOPED_DIRS,
        span_scope: Sequence[str] = DEFAULT_SPAN_SCOPE,
        span_exclude: Sequence[str] = DEFAULT_SPAN_EXCLUDE,
    ):
        self.scoped_dirs = tuple(scoped_dirs)
        self.span_scope = tuple(span_scope)
        self.span_exclude = tuple(span_exclude)

    def _in_scoped_dir(self, path: str) -> bool:
        return any(d in path for d in self.scoped_dirs)

    def _in_span_scope(self, path: str) -> bool:
        if any(e in path for e in self.span_exclude):
            return False
        return any(s in path for s in self.span_scope)

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        scoped = self._in_scoped_dir(ctx.display_path)
        span_scoped = self._in_span_scope(ctx.display_path)
        if not scoped and not span_scoped:
            return
        for node in ast.walk(ctx.tree):
            if scoped and isinstance(node, ast.AugAssign):
                target = node.target
                if (
                    isinstance(node.op, ast.Add)
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and self.COUNTER_ATTR_RE.search(target.attr.lower())
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"ad-hoc counter self.{target.attr} += ...; route "
                        "through a repro.obs registry Counter (keep a "
                        "read-only property shim if the attribute is public)",
                    )
            elif scoped and isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "time"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "time.time() delta timing; use a repro.obs Histogram "
                        "(or time.monotonic/perf_counter for local deltas)",
                    )
            if span_scoped and isinstance(node, ast.Call):
                yield from self._check_span_name(ctx, node)

    def _check_span_name(self, ctx: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        name = _func_name(node)
        if name not in ("span", "obs_span"):
            return
        if not node.args:
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if not self.SPAN_NAME_RE.match(first.value):
                yield self.finding(
                    ctx,
                    node,
                    f"span name {first.value!r} does not match the documented "
                    "noun.verb grammar (lowercase dotted segments, >= 2)",
                )
        elif isinstance(first, ast.JoinedStr) and first.values:
            head = first.values[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                if not self.SPAN_PREFIX_RE.match(head.value):
                    yield self.finding(
                        ctx,
                        node,
                        f"dynamic span name prefix {head.value!r} does not "
                        "match the noun.verb grammar (expected 'noun.')",
                    )
            else:
                yield self.finding(
                    ctx,
                    node,
                    "dynamic span name has no literal 'noun.' prefix; span "
                    "families must be greppable by their leading segment",
                )


# --------------------------------------------------------------------- #
# REP004 — lock order
# --------------------------------------------------------------------- #

_LOCKISH_RE = re.compile(r"lock|mutex", re.IGNORECASE)

_BLOCKING_ATTRS = ("recv", "recv_bytes", "accept")


class LockOrderRule(Rule):
    """Cycles in the static lock graph; blocking calls under a held lock."""

    rule_id = "REP004"
    name = "lock-order"
    description = (
        "the static lock-acquisition graph must be acyclic, and blocking "
        "calls (socket recv, subprocess, queue.get without timeout) may "
        "not run while a lock is held"
    )

    def __init__(self) -> None:
        # lock -> {inner lock -> first (path, line) site that created the edge}
        self._edges: Dict[str, Dict[str, Tuple[str, int]]] = {}

    # -- lock identity -------------------------------------------------- #

    def _lock_id(
        self, node: ast.AST, cls: Optional[ast.ClassDef]
    ) -> Optional[str]:
        """Canonical name for a lock expression, or None if not lockish.

        ``self._lock`` inside ``class C`` becomes ``C._lock`` (stable across
        files); other receivers collapse to ``~.attr`` — distinct attribute
        names stay distinct, unknown owners share a wildcard.
        """
        if isinstance(node, ast.Attribute) and _LOCKISH_RE.search(node.attr):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "self" and cls is not None:
                return f"{cls.name}.{node.attr}"
            return f"~.{node.attr}"
        if isinstance(node, ast.Name) and _LOCKISH_RE.search(node.id):
            return node.id
        if isinstance(node, ast.Call):
            # `with self._locked(...):` — a lockish helper used as a context
            # manager acquires whatever it wraps; treat the helper itself as
            # the lock identity.
            name = _func_name(node)
            if name is not None and _LOCKISH_RE.search(name):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and cls is not None
                ):
                    return f"{cls.name}.{name}"
                return f"~.{name}"
        return None

    # -- per-function scan ---------------------------------------------- #

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func, cls in _iter_functions(ctx.tree):
            yield from self._scan_block(ctx, cls, list(ast.iter_child_nodes(func)), [])

    def _scan_block(
        self,
        ctx: ModuleContext,
        cls: Optional[ast.ClassDef],
        nodes: Sequence[ast.AST],
        held: List[str],
    ) -> Iterator[Finding]:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs are scanned as their own functions
            if isinstance(node, ast.With):
                acquired = []
                for item in node.items:
                    lock = self._lock_id(item.context_expr, cls)
                    if lock is not None:
                        self._note_acquisition(ctx, node, held + acquired, lock)
                        acquired.append(lock)
                yield from self._scan_block(ctx, cls, node.body, held + acquired)
                continue
            # `.acquire()` outside a with-statement: held for the remainder
            # of the enclosing block (release tracking is out of scope for
            # a static pass; FairLock/RLock use the with form everywhere).
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == "acquire"
            ):
                lock = self._lock_id(node.value.func.value, cls)
                if lock is not None:
                    self._note_acquisition(ctx, node, held, lock)
                    held = held + [lock]
                continue
            if held:
                yield from self._check_blocking(ctx, node, held)
            for child in ast.iter_child_nodes(node):
                yield from self._scan_block(ctx, cls, [child], held)

    def _note_acquisition(
        self, ctx: ModuleContext, node: ast.AST, held: Sequence[str], lock: str
    ) -> None:
        for outer in held:
            if outer == lock:
                continue
            sites = self._edges.setdefault(outer, {})
            sites.setdefault(lock, (ctx.display_path, getattr(node, "lineno", 1)))

    def _check_blocking(
        self, ctx: ModuleContext, node: ast.AST, held: Sequence[str]
    ) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        held_desc = ", ".join(held)
        if isinstance(func, ast.Attribute):
            if func.attr in _BLOCKING_ATTRS:
                yield self.finding(
                    ctx,
                    node,
                    f"blocking .{func.attr}() inside a held-lock region "
                    f"({held_desc}); a hung peer freezes every thread "
                    "queued on the lock",
                )
            elif (
                func.attr == "get"
                and isinstance(func.value, (ast.Name, ast.Attribute))
                and "queue" in (_receiver_parts(func.value) or [""])[-1].lower()
                # dict.get(key) always passes the key positionally; a
                # blocking queue.Queue.get() takes no positional args.
                and not node.args
                and not any(kw.arg == "timeout" for kw in node.keywords)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "queue .get() without timeout inside a held-lock region "
                    f"({held_desc})",
                )
            elif (
                isinstance(func.value, ast.Name)
                and func.value.id == "subprocess"
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"subprocess.{func.attr}() inside a held-lock region "
                    f"({held_desc}); process spawn/wait can block "
                    "indefinitely",
                )

    # -- whole-run cycle detection -------------------------------------- #

    def finalize(self, modules: Sequence[ModuleContext]) -> Iterator[Finding]:
        reported: Set[Tuple[str, ...]] = set()
        for start in sorted(self._edges):
            cycle = self._find_cycle(start)
            if cycle is None:
                continue
            canonical = self._canonical(cycle)
            if canonical in reported:
                continue
            reported.add(canonical)
            first_hop = self._edges[cycle[0]][cycle[1]]
            yield Finding(
                rule=self.rule_id,
                path=first_hop[0],
                line=first_hop[1],
                message=(
                    "lock-acquisition cycle: "
                    + " -> ".join([*cycle, cycle[0]])
                    + " (acquisition order must form a DAG)"
                ),
            )
        self._edges = {}

    def _find_cycle(self, start: str) -> Optional[List[str]]:
        path: List[str] = []
        on_path: Set[str] = set()
        visited: Set[str] = set()

        def dfs(node: str) -> Optional[List[str]]:
            if node in on_path:
                return path[path.index(node):]
            if node in visited:
                return None
            visited.add(node)
            path.append(node)
            on_path.add(node)
            for nxt in sorted(self._edges.get(node, {})):
                found = dfs(nxt)
                if found is not None:
                    return found
            path.pop()
            on_path.discard(node)
            return None

        return dfs(start)

    @staticmethod
    def _canonical(cycle: List[str]) -> Tuple[str, ...]:
        pivot = cycle.index(min(cycle))
        return tuple(cycle[pivot:] + cycle[:pivot])


# --------------------------------------------------------------------- #
# REP005 — typed wire errors
# --------------------------------------------------------------------- #


class TypedWireErrorsRule(Rule):
    """Handler-reachable code raises only typed wire-crossing errors."""

    rule_id = "REP005"
    name = "typed-wire-errors"
    description = (
        "server/client request handlers (and everything they call) raise "
        "typed wire-crossing errors, never bare Exception/RuntimeError"
    )

    #: module suffix -> handler-root name patterns (fnmatch-style ``*``).
    DEFAULT_HANDLER_ROOTS = {
        "repro/distributed/server.py": ("handle_*", "_client_loop"),
        "repro/distributed/client.py": ("request",),
    }
    BANNED = ("Exception", "RuntimeError", "BaseException")

    def __init__(self, handler_roots: Optional[Dict[str, Sequence[str]]] = None):
        self.handler_roots = dict(
            self.DEFAULT_HANDLER_ROOTS if handler_roots is None else handler_roots
        )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        patterns: Optional[Sequence[str]] = None
        for suffix, pats in self.handler_roots.items():
            if ctx.display_path.endswith(suffix):
                patterns = pats
                break
        if patterns is None:
            return

        functions = {
            name: func
            for func, _cls in _iter_functions(ctx.tree)
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
            for name in [func.name]
        }
        # Intra-module call graph on simple names: handler roots plus
        # everything they (transitively) call is "wire-visible".
        reachable: Set[str] = set()
        frontier = [
            name
            for name in functions
            if any(fnmatch.fnmatch(name, pat) for pat in patterns)
        ]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for node in ast.walk(functions[name]):
                if isinstance(node, ast.Call):
                    callee = _func_name(node)
                    if callee in functions and callee not in reachable:
                        frontier.append(callee)

        for name in sorted(reachable):
            func = functions[name]
            for node in ast.walk(func):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                exc_name = None
                if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                    exc_name = exc.func.id
                elif isinstance(exc, ast.Name):
                    exc_name = exc.id
                if exc_name in self.BANNED:
                    yield self.finding(
                        ctx,
                        node,
                        f"raise {exc_name} in {name}() is wire-visible "
                        "(reachable from a request handler); raise a typed "
                        "wire-crossing error so clients can dispatch on "
                        "the kind",
                    )


# --------------------------------------------------------------------- #
# REP006 — tests are packages
# --------------------------------------------------------------------- #


class TestsArePackagesRule(Rule):
    """Every directory holding tests must be a package (``__init__.py``)."""

    rule_id = "REP006"
    name = "tests-are-packages"
    description = (
        "every tests/ directory has an __init__.py (duplicate test "
        "basenames break pytest collection otherwise)"
    )

    def finalize(self, modules: Sequence[ModuleContext]) -> Iterator[Finding]:
        seen = set()
        for ctx in modules:
            parts = ctx.path.parts
            if "tests" not in parts:
                continue
            directory = ctx.path.parent
            if directory in seen:
                continue
            seen.add(directory)
            if not (directory / "__init__.py").exists():
                yield Finding(
                    rule=self.rule_id,
                    path=(directory / "__init__.py").as_posix(),
                    line=1,
                    message=(
                        "test directory is not a package; add __init__.py "
                        "so duplicate basenames cannot collide during "
                        "pytest collection"
                    ),
                )


# --------------------------------------------------------------------- #


def default_rules() -> List[Rule]:
    """The full battery with this repository's configuration."""
    return [
        WireSafetyRule(),
        CapabilityGuardRule(),
        ObsDisciplineRule(),
        LockOrderRule(),
        TypedWireErrorsRule(),
        TestsArePackagesRule(),
    ]
